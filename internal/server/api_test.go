package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ldis/internal/mem"
	"ldis/internal/trace"
)

// startTestServer brings up a full server over HTTP and tears it down
// with the test.
func startTestServer(t *testing.T) (*Server, string, *http.Client) {
	t.Helper()
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{}
	t.Cleanup(func() {
		client.CloseIdleConnections()
		s.Shutdown(context.Background())
	})
	return s, "http://" + s.Addr(), client
}

// TestTraceUploadAndReplay drives the tracesim path end to end over
// HTTP: upload a trace, run a distill replay over it, stream the
// result, and read the stored trace's metadata back.
func TestTraceUploadAndReplay(t *testing.T) {
	_, base, client := startTestServer(t)

	accs := make([]mem.Access, 256)
	for i := range accs {
		accs[i] = mem.Access{Addr: mem.Addr(0x4000 + (i%32)*64), Kind: mem.Load}
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, accs); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID      string `json:"id"`
		Records int    `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || up.Records != len(accs) {
		t.Fatalf("upload: status %d records %d, want 201 with %d", resp.StatusCode, up.Records, len(accs))
	}

	info, err := client.Get(base + "/v1/traces/" + up.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, info.Body)
	info.Body.Close()
	if info.StatusCode != http.StatusOK {
		t.Fatalf("trace info: status %d, want 200", info.StatusCode)
	}

	spec := fmt.Sprintf(`{"kind":"tracesim","trace":%q,"cache":"distill","accesses":256}`, up.ID)
	jr, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(jr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusAccepted {
		t.Fatalf("tracesim submit: status %d, want 202", jr.StatusCode)
	}

	rr, err := client.Get(base + "/v1/jobs/" + st.ID + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if got := rr.Trailer.Get("X-Ldisd-Status"); got != "done" {
		t.Fatalf("tracesim trailer %q (error %q), want done; body:\n%s",
			got, rr.Trailer.Get("X-Ldisd-Error"), body)
	}
	if !bytes.Contains(body, []byte("trace "+up.ID+" via distill")) {
		t.Errorf("result missing replay summary; body:\n%s", body)
	}

	mr, err := client.Get(base + "/v1/jobs/" + st.ID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if mr.StatusCode != http.StatusOK || !bytes.Contains(mbody, []byte(`"tool": "ldisd"`)) {
		t.Errorf("tracesim manifest: status %d body %s", mr.StatusCode, mbody)
	}
}

// TestRejectedSpecsAreStructured400s pins the admission door: hostile
// or malformed specs are refused with a structured error body, and
// semantic problems arrive as the complete list, not one at a time.
func TestRejectedSpecsAreStructured400s(t *testing.T) {
	_, base, client := startTestServer(t)
	cases := []struct {
		name, body string
		wantStatus int
		wantSubstr []string
	}{
		{"empty body", ``, 400, []string{"empty body"}},
		{"trailing data", `{"kind":"exp","experiments":["fig6"]} {"again":1}`, 400, []string{"trailing data"}},
		{"unknown field", `{"kind":"exp","experiments":["fig6"],"bogus":1}`, 400, []string{"bogus"}},
		{"not json", `##not json##`, 400, []string{"spec"}},
		{"problem list", `{"kind":"exp","experiments":["nope"],"accesses":-4,"retries":99}`, 400,
			[]string{"unknown experiment", "accesses", "retries"}},
		{"exp+trace mixed", `{"kind":"exp","experiments":["fig6"],"trace":"t0123456789abcdef"}`, 400,
			[]string{"only valid with kind tracesim"}},
		{"traversal trace id", `{"kind":"tracesim","trace":"../../etc/passwd"}`, 400,
			[]string{"malformed trace id"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			var e struct {
				Error     string `json:"error"`
				RequestID string `json:"request_id"`
			}
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body not JSON: %v (%s)", err, body)
			}
			if e.Error == "" || e.RequestID == "" {
				t.Errorf("unstructured error body: %s", body)
			}
			for _, want := range tc.wantSubstr {
				if !strings.Contains(e.Error, want) {
					t.Errorf("error %q missing %q", e.Error, want)
				}
			}
		})
	}
}

// TestRequestGuards pins the pre-routing limits: oversized paths,
// over-deep paths, oversized spec bodies, and malformed ids are all
// bounced with structured errors before any work happens.
func TestRequestGuards(t *testing.T) {
	_, base, client := startTestServer(t)

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := get("/v1/jobs/" + strings.Repeat("a", 300)); resp.StatusCode != http.StatusRequestURITooLong {
		t.Errorf("long path: status %d, want 414", resp.StatusCode)
	}
	if resp := get("/v1/" + strings.Repeat("d/", 8) + "x"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("deep path: status %d, want 400", resp.StatusCode)
	}
	if resp := get("/v1/jobs/not-a-job-id"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed job id: status %d, want 400", resp.StatusCode)
	}
	if resp := get("/v1/jobs/j0123456789abcdef"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
	if resp := get("/v1/traces/t0123456789abcdef"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", resp.StatusCode)
	}

	// A spec body over MaxSpecBytes must be cut off by the body limit,
	// not buffered.
	huge := `{"kind":"exp","experiments":["fig6"],"benchmarks":["` + strings.Repeat("a", 2<<20) + `"]}`
	resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized spec: status %d, want 413", resp.StatusCode)
	}
}

// TestRequestIDThreading pins correlation: a well-formed inbound
// X-Request-Id is honoured end to end (response header, error body,
// job status, manifest params), and a hostile one is replaced.
func TestRequestIDThreading(t *testing.T) {
	_, base, client := startTestServer(t)

	req, _ := http.NewRequest("GET", base+"/v1/jobs/zzz", nil)
	req.Header.Set("X-Request-Id", "my-trace-7")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "my-trace-7" {
		t.Errorf("response X-Request-Id %q, want my-trace-7", got)
	}
	if !bytes.Contains(body, []byte(`"request_id": "my-trace-7"`)) {
		t.Errorf("error body missing request id: %s", body)
	}

	req, _ = http.NewRequest("GET", base+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "bad id {with} spaces")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "" || strings.Contains(got, "bad") {
		t.Errorf("hostile inbound request id not replaced: %q", got)
	}

	// The request id rides the job into its manifest.
	spec := `{"kind":"exp","experiments":["fig6"],"benchmarks":["mcf"],"accesses":20000}`
	req, _ = http.NewRequest("POST", base+"/v1/jobs", strings.NewReader(spec))
	req.Header.Set("X-Request-Id", "corr-42")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.RequestID != "corr-42" {
		t.Fatalf("job status request_id %q, want corr-42", st.RequestID)
	}
	for i := 0; ; i++ {
		resp, err := client.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State == StateDone {
			break
		}
		if st.State.terminal() || i > 1000 {
			t.Fatalf("job state %s (err %q)", st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	mresp, err := client.Get(base + "/v1/jobs/" + st.ID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(mbody, []byte(`"request_id": "corr-42"`)) {
		t.Errorf("manifest missing request id param: %s", mbody)
	}
}

// TestSubmitIsIdempotent pins that resubmitting an identical spec
// returns the existing job with 200 rather than double-running it.
func TestSubmitIsIdempotent(t *testing.T) {
	s, base, client := startTestServer(t)
	spec := `{"kind":"exp","experiments":["fig6"],"benchmarks":["health"],"accesses":20000}`
	first, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st1 JobStatus
	json.NewDecoder(first.Body).Decode(&st1)
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", first.StatusCode)
	}
	second, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st2 JobStatus
	json.NewDecoder(second.Body).Decode(&st2)
	second.Body.Close()
	if second.StatusCode != http.StatusOK || st2.ID != st1.ID {
		t.Fatalf("resubmit: status %d id %s, want 200 with id %s", second.StatusCode, st2.ID, st1.ID)
	}
	j, ok := s.store.get(st1.ID)
	if !ok {
		t.Fatal("job missing from store")
	}
	waitState(t, j, StateDone)
}

// TestHealthAndExperiments pins the two discovery endpoints.
func TestHealthAndExperiments(t *testing.T) {
	_, base, client := startTestServer(t)
	var h struct {
		Status     string `json:"status"`
		QueueDepth int    `json:"queue_depth"`
	}
	resp, err := client.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Status != "ok" || h.QueueDepth != 2 {
		t.Errorf("health %+v, want ok with queue_depth 2", h)
	}

	var exps []struct {
		ID string `json:"id"`
	}
	resp, err = client.Get(base + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&exps)
	resp.Body.Close()
	found := false
	for _, e := range exps {
		if e.ID == "fig6" {
			found = true
		}
	}
	if !found {
		t.Errorf("experiment listing missing fig6: %+v", exps)
	}
}

// TestV1OpenAPIDocument: /v1/openapi.json serves a document whose path
// set matches the routing table exactly — the spec cannot drift from
// the mux.
func TestV1OpenAPIDocument(t *testing.T) {
	s, base, client := startTestServer(t)
	resp, err := client.Get(base + "/v1/openapi.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		OpenAPI string                    `json:"openapi"`
		Info    struct{ Version string }  `json:"info"`
		Paths   map[string]map[string]any `json:"paths"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.OpenAPI == "" {
		t.Error("missing openapi version field")
	}
	want := map[string]bool{}
	for _, rt := range s.routes() {
		want[rt.path] = true
	}
	for p := range want {
		if _, ok := doc.Paths[p]; !ok {
			t.Errorf("route %s missing from openapi document", p)
		}
	}
	for p := range doc.Paths {
		if !want[p] {
			t.Errorf("openapi documents %s, which the mux does not serve", p)
		}
	}
	if _, ok := doc.Paths["/v1/jobs"]["post"]; !ok {
		t.Error("POST /v1/jobs not documented")
	}
}

// TestLegacyPathPolicy pins the unversioned-path contract: known
// resources 301 on GET/HEAD (query preserved) and 410 on mutating
// methods; unknown paths are plain 404s. Content is never served
// outside /v1/.
func TestLegacyPathPolicy(t *testing.T) {
	_, base, _ := startTestServer(t)
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	t.Cleanup(client.CloseIdleConnections)

	cases := []struct {
		method, path string
		wantStatus   int
		wantLocation string
	}{
		{"GET", "/healthz", http.StatusMovedPermanently, "/v1/healthz"},
		{"HEAD", "/healthz", http.StatusMovedPermanently, "/v1/healthz"},
		{"GET", "/jobs/j123/result?wait=1", http.StatusMovedPermanently, "/v1/jobs/j123/result?wait=1"},
		{"GET", "/experiments", http.StatusMovedPermanently, "/v1/experiments"},
		{"POST", "/jobs", http.StatusGone, ""},
		{"POST", "/traces", http.StatusGone, ""},
		{"DELETE", "/jobs/j123", http.StatusGone, ""},
		{"GET", "/nope", http.StatusNotFound, ""},
		{"GET", "/", http.StatusNotFound, ""},
		{"POST", "/v2/jobs", http.StatusNotFound, ""},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, base+tc.path, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
		if got := resp.Header.Get("Location"); got != tc.wantLocation {
			t.Errorf("%s %s: location %q, want %q", tc.method, tc.path, got, tc.wantLocation)
		}
	}
}
