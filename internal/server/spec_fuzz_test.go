package server

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeSpec hammers the job-spec decoder — the first thing ldisd
// does with untrusted bytes — with hostile input. Invariants:
//
//   - DecodeSpec never panics and never returns (nil, nil);
//   - whatever decodes also survives Validate (the semantic pass must
//     tolerate any syntactically valid spec);
//   - accepted specs have stable identities: canonical(), ID(), and
//     workKey() are pure, and a decode → canonical round trip is
//     deterministic.
//
// Run via `make fuzz-smoke`; the seed corpus under
// testdata/fuzz/FuzzDecodeSpec is committed.
func FuzzDecodeSpec(f *testing.F) {
	f.Add(`{"kind":"exp","experiments":["fig6"]}`)
	f.Add(`{"kind":"tracesim","trace":"t0123456789abcdef","cache":"distill"}`)
	f.Add(`{"kind":"exp","experiments":["fig6","table5"],"accesses":60000,"warmup_frac":0.25,` +
		`"benchmarks":["mcf"],"keep_going":true,"retries":2,"format":"csv","fault_seed":7}`)
	f.Add(``)
	f.Add(`{}`)
	f.Add(`null`)
	f.Add(`{"kind":"exp"} trailing`)
	f.Add(`{"unknown_field":true}`)
	f.Add(`{"accesses":1e309}`)
	f.Add(`[1,2,3]`)
	f.Add(strings.Repeat(`{"kind":`, 64))

	cfg := Config{DataDir: "unused"}.withDefaults()
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := DecodeSpec(strings.NewReader(input))
		if err != nil {
			if spec != nil {
				t.Fatalf("error %v with non-nil spec", err)
			}
			return
		}
		if spec == nil {
			t.Fatal("nil spec with nil error")
		}
		// Validate must diagnose, never panic, on any decoded spec; it
		// normalizes in place, so identity is taken afterwards.
		vErr := spec.Validate(&cfg)
		c1, c2 := spec.canonical(), spec.canonical()
		if c1 != c2 {
			t.Fatalf("canonical not deterministic: %q vs %q", c1, c2)
		}
		if vErr != nil {
			return
		}
		if id := spec.ID(); len(id) != 17 || !jobIDPattern.MatchString(id) {
			t.Fatalf("malformed job id %q from valid spec", id)
		}
		if wk := spec.workKey(); len(wk) != 17 || !bytes.HasPrefix([]byte(wk), []byte("w")) {
			t.Fatalf("malformed work key %q from valid spec", wk)
		}
	})
}
