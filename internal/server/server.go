// Package server implements ldisd, the cache-analysis service: the
// experiment engine, miss-ratio-curve machinery, and trace replay that
// were previously reachable only through ldisexp flags, served as a
// long-running HTTP API.
//
// The robustness layer is the point, not an afterthought:
//
//   - Admission control. Jobs land on a bounded queue; when it is full
//     the server sheds load with 429 + Retry-After instead of growing
//     an unbounded backlog, and per-request body, path-depth, and
//     deadline limits bound what any one connection can cost.
//   - Structured failure. A panicking job worker never takes the
//     process down: the panic is recovered into a *par.TaskError — the
//     same structured failure type the cell scheduler uses — and
//     reported through the job's status with its request id, while the
//     stack goes to the log.
//   - Graceful drain. Shutdown stops admitting, sheds
//     queued-but-unstarted jobs with a retryable status, drains
//     in-flight jobs under a deadline (long sweeps checkpoint every
//     completed cell through the CRC-guarded checkpoint log, so even an
//     abandoned drain loses no finished work), and only then closes the
//     listener.
//   - Deterministic recovery. Job work directories are keyed by the
//     result-relevant spec fingerprint; a killed-mid-sweep job respun
//     after restart replays its checkpointed cells and renders
//     byte-identical output — the chaos tests pin exactly that.
package server

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ldis/internal/faultinject"
	"ldis/internal/par"
)

// Config sizes the service. The zero value of every field means "use
// the default"; DataDir is the only field without one.
type Config struct {
	// DataDir roots all persistent state: job work directories (with
	// their checkpoints and manifests) under jobs/, uploaded traces
	// under traces/.
	DataDir string

	// QueueDepth bounds the admission queue; submissions beyond it are
	// shed with 429. Default 8.
	QueueDepth int
	// Workers is the number of concurrent job executors. Default 2.
	Workers int
	// CellWorkers caps each job's (benchmark × configuration) fan-out
	// inside the experiment engine; 0 means GOMAXPROCS.
	CellWorkers int

	// MaxAccesses is the admission cap on a job's per-cell access
	// count. Default 5,000,000.
	MaxAccesses int
	// DefaultAccesses is used when a spec leaves accesses zero.
	// Default 120,000.
	DefaultAccesses int

	// MaxBodyBytes caps trace-upload bodies. Default 64 MiB.
	MaxBodyBytes int64
	// MaxSpecBytes caps job-spec bodies. Default 1 MiB.
	MaxSpecBytes int64
	// MaxPathBytes and MaxPathDepth cap request-path length and
	// segment count — cheap DoS guards ahead of routing. Defaults 256
	// bytes, 6 segments.
	MaxPathBytes int
	MaxPathDepth int

	// RequestTimeout is the per-request handler deadline; it also
	// bounds result long-polls. Default 60s.
	RequestTimeout time.Duration
	// ReadHeaderTimeout, ReadTimeout, WriteTimeout, and IdleTimeout
	// harden the listener against slowloris-style clients. Defaults
	// 5s, 2m, 5m, 2m.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration

	// FaultSeed, when nonzero, deterministically panics a seeded
	// subset of job executions via internal/faultinject — the
	// chaos-testing hook for the worker panic boundary. 0 disables it.
	FaultSeed uint64

	// Log receives request and job lines; nil means standard error.
	Log *log.Logger
}

// withDefaults fills every unset field.
func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.QueueDepth, 8)
	def(&c.Workers, 2)
	def(&c.MaxAccesses, 5_000_000)
	def(&c.DefaultAccesses, 120_000)
	def(&c.MaxPathBytes, 256)
	def(&c.MaxPathDepth, 6)
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxSpecBytes == 0 {
		c.MaxSpecBytes = 1 << 20
	}
	defDur := func(v *time.Duration, d time.Duration) {
		if *v == 0 {
			*v = d
		}
	}
	defDur(&c.RequestTimeout, 60*time.Second)
	defDur(&c.ReadHeaderTimeout, 5*time.Second)
	defDur(&c.ReadTimeout, 2*time.Minute)
	defDur(&c.WriteTimeout, 5*time.Minute)
	defDur(&c.IdleTimeout, 2*time.Minute)
	if c.Log == nil {
		c.Log = log.New(os.Stderr, "ldisd: ", log.LstdFlags)
	}
	return c
}

// Server is the ldisd service instance.
type Server struct {
	cfg   Config
	store *store
	inj   *faultinject.Injector

	mu       sync.Mutex // guards queue admission against close
	queue    chan *Job
	draining bool

	workerWG sync.WaitGroup
	serveWG  sync.WaitGroup
	abandon  atomic.Bool // drain deadline passed: jobs stop between experiments

	httpSrv *http.Server
	ln      net.Listener
	reqSeq  atomic.Uint64

	// testHold, when non-nil, makes workers block on it before picking
	// up each job — the tests' way of pinning jobs in the queue.
	testHold chan struct{}
}

// New builds a server over cfg and prepares its data directories.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: Config.DataDir is required")
	}
	cfg = cfg.withDefaults()
	for _, d := range []string{cfg.DataDir, filepath.Join(cfg.DataDir, "jobs"), filepath.Join(cfg.DataDir, "traces")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s := &Server{
		cfg:   cfg,
		store: newStore(),
		queue: make(chan *Job, cfg.QueueDepth),
	}
	if cfg.FaultSeed != 0 {
		s.inj = faultinject.NewDefault(cfg.FaultSeed)
	}
	return s, nil
}

// logf writes one log line.
func (s *Server) logf(format string, args ...any) {
	s.cfg.Log.Printf(format, args...)
}

// Start listens on addr and serves until Shutdown. The worker pool and
// the listener goroutine are all joined by Shutdown, so a completed
// Start/Shutdown cycle leaves no goroutines behind.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
		ErrorLog:          s.cfg.Log,
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		//ldis:goroutine-ok worker pool is joined by Shutdown via workerWG after the queue closes
		go func() {
			defer s.workerWG.Done()
			s.worker()
		}()
	}
	s.serveWG.Add(1)
	//ldis:goroutine-ok listener daemon is joined by Shutdown via serveWG once httpSrv.Shutdown unblocks Serve
	go func() {
		defer s.serveWG.Done()
		s.httpSrv.Serve(ln)
	}()
	s.logf("listening on http://%s/ (queue %d, workers %d)", ln.Addr(), s.cfg.QueueDepth, s.cfg.Workers)
	return nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Admission errors, mapped to HTTP statuses by the submit handler.
var (
	// ErrQueueFull sheds load when the bounded queue is at capacity.
	ErrQueueFull = fmt.Errorf("server: job queue full")
	// ErrDraining refuses new work during graceful shutdown.
	ErrDraining = fmt.Errorf("server: draining, not admitting new jobs")
)

// Submit validates admission and enqueues the job. It returns the job
// (possibly an existing one — submission is idempotent on the spec)
// and whether this call enqueued fresh work.
func (s *Server) Submit(spec *Spec, requestID string) (*Job, bool, error) {
	dir := filepath.Join(s.cfg.DataDir, "jobs", spec.workKey())
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	j, fresh, err := s.store.admit(spec, requestID, dir)
	if err != nil || !fresh {
		return j, false, err
	}
	select {
	case s.queue <- j:
		return j, true, nil
	default:
		// Shed: undo the registration so a retry after Retry-After is
		// admitted cleanly rather than conflicting with a ghost entry.
		s.store.forget(j)
		return nil, false, ErrQueueFull
	}
}

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	for j := range s.queue {
		if s.testHold != nil {
			<-s.testHold
		}
		s.runJob(j)
	}
}

// runJob is the worker panic boundary: any panic escaping a job —
// injected by the chaos hook or real — is recovered into a structured
// *par.TaskError on the job, with the stack logged under the job's
// request id. The server itself never goes down with a job.
func (s *Server) runJob(j *Job) {
	if !j.begin() {
		s.store.release(j) // rejected between admission and pickup
		return
	}
	defer func() {
		if r := recover(); r != nil {
			te := &par.TaskError{Index: j.Seq, Attempts: 1, Panic: r, Stack: debug.Stack()}
			s.logf("job %s req %s panicked: %v\n%s", j.ID, j.RequestID, r, te.Stack)
			j.finish(StateFailed, te.Error(), false)
		}
		s.store.release(j)
	}()
	if s.inj != nil {
		s.inj.MaybePanic("job/" + j.ID)
	}
	var err error
	var retryable bool
	switch j.Spec.Kind {
	case "tracesim":
		err = s.runTraceSim(j)
	default:
		err, retryable = s.runExperiments(j)
	}
	if err != nil {
		s.logf("job %s req %s failed: %v", j.ID, j.RequestID, err)
		j.finish(StateFailed, err.Error(), retryable)
		return
	}
	s.logf("job %s req %s done", j.ID, j.RequestID)
	j.finish(StateDone, "", false)
}

// Shutdown drains the server gracefully: stop admitting, shed queued
// jobs with a retryable status, drain in-flight jobs until ctx
// expires (after which they are asked to stop at the next experiment
// boundary — every completed cell is already checkpointed), then close
// the listener. It returns nil on a complete drain and an error
// naming the abandoned jobs otherwise.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("server: already shut down")
	}
	s.draining = true
	// Shed everything still queued. Workers pulling concurrently are
	// fine: whoever wins the receive decides, and begin()/reject()
	// serialize on the job's own lock.
	shed := 0
	for {
		select {
		case j := <-s.queue:
			if j.reject("server draining before job started; resubmit to retry") {
				shed++
			}
			s.store.release(j)
		default:
			goto drained
		}
	}
drained:
	close(s.queue)
	s.mu.Unlock()
	if shed > 0 {
		s.logf("drain: shed %d queued job(s) with retryable status", shed)
	}

	workersDone := make(chan struct{})
	//ldis:goroutine-ok bounded by worker completion: workerWG.Wait returns once the closed queue drains, and a completed drain reaches the select below
	go func() {
		s.workerWG.Wait()
		close(workersDone)
	}()
	var drainErr error
	select {
	case <-workersDone:
	case <-ctx.Done():
		// Deadline passed: ask in-flight jobs to stop at their next
		// experiment boundary and give them one short grace period.
		s.abandon.Store(true)
		select {
		case <-workersDone:
		case <-time.After(2 * time.Second):
			_, running, _, _ := s.store.counts()
			drainErr = fmt.Errorf("server: drain deadline exceeded with %d job(s) still in flight (checkpoints preserved; resubmit after restart)", running)
		}
	}

	// Close the listener last so clients can poll job status for the
	// whole drain window.
	if s.httpSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.httpSrv.Shutdown(sctx); err != nil {
			s.httpSrv.Close()
		}
		s.serveWG.Wait()
	}
	if drainErr == nil {
		s.logf("drain complete")
	} else {
		s.logf("%v", drainErr)
	}
	return drainErr
}

// abandoned reports whether the drain deadline has passed and
// in-flight jobs should stop at the next safe point.
func (s *Server) abandoned() bool { return s.abandon.Load() }

// RunSignals runs the standard ldisd signal protocol over an already
// Started server: the first signal begins a graceful drain bounded by
// drainTimeout; a second signal while draining forces a fast exit.
// exit is called with 0 on a clean drain, 1 on a drain error, and 2 on
// a forced fast exit; it is a parameter (rather than os.Exit) so the
// protocol is testable under -race.
func RunSignals(s *Server, sig <-chan os.Signal, drainTimeout time.Duration, exit func(code int)) {
	<-sig
	s.logf("signal received: draining (timeout %v; second signal forces exit)", drainTimeout)
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	select {
	case err := <-done:
		if err != nil {
			exit(1)
		} else {
			exit(0)
		}
	case <-sig:
		s.logf("second signal: forcing fast exit (checkpoints preserved)")
		s.abandon.Store(true)
		exit(2)
	}
	// A real exit never returns; the test fake does, so join the drain
	// goroutine before leaving (it finishes promptly once abandon is
	// set and the workers wind down).
	wg.Wait()
}
