// Package benchgate owns the throughput-report format written by
// `ldisexp -throughput` and the regression check `make bench-gate`
// applies to it: a committed baseline report under benchmarks/baseline
// is compared against a freshly generated one, and any experiment whose
// accesses-per-second figure dropped by more than the tolerance fails
// the gate. Promotion (replacing the baseline) is a separate, explicit
// step — the gate itself never writes.
package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Entry is one experiment's throughput measurement. Seconds is wall
// time; DecodeSeconds the portion spent generating records (summed
// across workers); SimSeconds the simulate-only time the throughput
// figure is computed from (the median across -bench-repeats runs).
type Entry struct {
	ID             string  `json:"id"`
	SimAccesses    uint64  `json:"sim_accesses"`
	Seconds        float64 `json:"seconds"`
	DecodeSeconds  float64 `json:"decode_seconds"`
	SimSeconds     float64 `json:"sim_seconds"`
	AccessesPerSec float64 `json:"accesses_per_sec"`
}

// Rate returns the entry's throughput figure, preferring the stored
// accesses_per_sec and falling back to recomputing it, so reports
// predating the sim_seconds split still compare.
func (e Entry) Rate() float64 {
	if e.AccessesPerSec > 0 {
		return e.AccessesPerSec
	}
	if e.SimSeconds > 0 {
		return float64(e.SimAccesses) / e.SimSeconds
	}
	if e.Seconds > 0 {
		return float64(e.SimAccesses) / e.Seconds
	}
	return 0
}

// Report is the full throughput report: scheduler configuration plus
// one Entry per experiment and a total.
type Report struct {
	Generated  string  `json:"generated"`
	GoMaxProcs int     `json:"go_max_procs"`
	Workers    int     `json:"workers"`
	Shards     int     `json:"shards,omitempty"`
	Repeats    int     `json:"repeats,omitempty"`
	Accesses   int     `json:"accesses"`
	Total      Entry   `json:"total"`
	Results    []Entry `json:"results"`
}

// Load reads and decodes a throughput report.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	return &r, nil
}

// Regression is one experiment that fails the gate: either its
// throughput dropped past the tolerance, or it vanished from the
// latest report.
type Regression struct {
	ID       string
	Baseline float64 // accesses/sec in the baseline
	Latest   float64 // accesses/sec in the latest report (0 if missing)
	Change   float64 // fractional change; -0.07 means 7% slower
	Missing  bool    // experiment absent from the latest report
}

func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s: missing from latest report (baseline %.0f acc/s)", r.ID, r.Baseline)
	}
	return fmt.Sprintf("%s: %.0f -> %.0f acc/s (%+.1f%%, tolerance exceeded)",
		r.ID, r.Baseline, r.Latest, 100*r.Change)
}

// Compare returns every per-experiment regression beyond tol (a
// fraction: 0.05 allows a 5% slowdown), in experiment-id order, plus
// the total row under the id "total". Experiments present only in the
// latest report are improvements by definition and never flagged.
func Compare(baseline, latest *Report, tol float64) []Regression {
	byID := make(map[string]Entry, len(latest.Results))
	for _, e := range latest.Results {
		byID[e.ID] = e
	}
	var regs []Regression
	check := func(id string, base, cur Entry, present bool) {
		b := base.Rate()
		if b <= 0 {
			return // nothing to regress against
		}
		if !present {
			regs = append(regs, Regression{ID: id, Baseline: b, Missing: true})
			return
		}
		change := cur.Rate()/b - 1
		if change < -tol {
			regs = append(regs, Regression{ID: id, Baseline: b, Latest: cur.Rate(), Change: change})
		}
	}
	ids := make([]string, 0, len(baseline.Results))
	for _, e := range baseline.Results {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, e := range baseline.Results {
			if e.ID == id {
				cur, ok := byID[id]
				check(id, e, cur, ok)
				break
			}
		}
	}
	check("total", baseline.Total, latest.Total, true)
	return regs
}

// Gate runs Compare and renders the failures as one error (nil when
// the latest report holds the line everywhere).
func Gate(baseline, latest *Report, tol float64) error {
	regs := Compare(baseline, latest, tol)
	if len(regs) == 0 {
		return nil
	}
	lines := make([]string, len(regs))
	for i, r := range regs {
		lines[i] = "  " + r.String()
	}
	return fmt.Errorf("benchgate: %d regression(s) beyond %.0f%% tolerance:\n%s",
		len(regs), 100*tol, strings.Join(lines, "\n"))
}
