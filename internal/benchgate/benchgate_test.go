package benchgate

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(total float64, rates map[string]float64) *Report {
	r := &Report{Total: Entry{ID: "total", AccessesPerSec: total}}
	for id, aps := range rates {
		r.Results = append(r.Results, Entry{ID: id, AccessesPerSec: aps})
	}
	return r
}

// The acceptance criterion made executable: the gate must fail on a
// synthetically regressed snapshot and pass on equal or improved ones.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	base := report(3_000_000, map[string]float64{"fig6": 1_000_000, "fig7": 2_000_000})

	regressed := report(2_400_000, map[string]float64{"fig6": 1_000_000, "fig7": 1_400_000})
	err := Gate(base, regressed, 0.05)
	if err == nil {
		t.Fatal("gate passed a 30% fig7 regression")
	}
	if !strings.Contains(err.Error(), "fig7") || !strings.Contains(err.Error(), "total") {
		t.Errorf("gate error names neither fig7 nor total: %v", err)
	}
	if strings.Contains(err.Error(), "fig6:") {
		t.Errorf("gate error flags the unregressed fig6: %v", err)
	}

	if err := Gate(base, base, 0.05); err != nil {
		t.Errorf("gate failed on identical reports: %v", err)
	}
	improved := report(4_000_000, map[string]float64{"fig6": 1_500_000, "fig7": 2_500_000})
	if err := Gate(base, improved, 0.05); err != nil {
		t.Errorf("gate failed on an improvement: %v", err)
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	base := report(1_000_000, map[string]float64{"fig6": 1_000_000})
	within := report(960_000, map[string]float64{"fig6": 960_000}) // -4%
	if regs := Compare(base, within, 0.05); len(regs) != 0 {
		t.Errorf("-4%% flagged at 5%% tolerance: %v", regs)
	}
	beyond := report(940_000, map[string]float64{"fig6": 940_000}) // -6%
	regs := Compare(base, beyond, 0.05)
	if len(regs) != 2 { // fig6 and total
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	if regs[0].ID != "fig6" || regs[1].ID != "total" {
		t.Errorf("regression order = %v", regs)
	}
	if regs[0].Change > -0.05 {
		t.Errorf("change = %v, want about -0.06", regs[0].Change)
	}
}

func TestCompareMissingExperiment(t *testing.T) {
	base := report(2_000_000, map[string]float64{"fig6": 1_000_000, "fig7": 1_000_000})
	latest := report(2_000_000, map[string]float64{"fig6": 2_000_000})
	regs := Compare(base, latest, 0.05)
	found := false
	for _, r := range regs {
		if r.ID == "fig7" && r.Missing {
			found = true
			if !strings.Contains(r.String(), "missing") {
				t.Errorf("missing-ID rendering: %q", r.String())
			}
		}
	}
	if !found {
		t.Fatalf("vanished experiment not flagged: %v", regs)
	}
	// New experiments in the latest report are never flagged.
	extra := report(2_000_000, map[string]float64{"fig6": 1_000_000, "fig7": 1_000_000, "fig9": 1})
	if regs := Compare(base, extra, 0.05); len(regs) != 0 {
		t.Errorf("new experiment flagged: %v", regs)
	}
}

// Rate must fall back for reports predating the sim_seconds split.
func TestEntryRateFallbacks(t *testing.T) {
	cases := []struct {
		name string
		e    Entry
		want float64
	}{
		{"stored", Entry{AccessesPerSec: 42, SimAccesses: 10, SimSeconds: 1}, 42},
		{"sim-seconds", Entry{SimAccesses: 100, SimSeconds: 2, Seconds: 4}, 50},
		{"wall-seconds", Entry{SimAccesses: 100, Seconds: 4}, 25},
		{"empty", Entry{}, 0},
	}
	for _, tc := range cases {
		if got := tc.e.Rate(); got != tc.want {
			t.Errorf("%s: Rate() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	want := report(123, map[string]float64{"fig6": 123})
	want.Generated = "2026-01-01T00:00:00Z"
	want.Workers = 1
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total.Rate() != 123 || len(got.Results) != 1 || got.Results[0].ID != "fig6" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("loading a missing file succeeded")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("loading malformed JSON succeeded")
	}
}
