// Package faultinject provides deterministic, seeded fault injectors
// for chaos-testing the experiment engine: a site-keyed Injector that
// decides which units of work fail (and whether a retry absorbs the
// fault), a bit-flipping io.Reader wrapper for exercising the hardened
// trace decoder, and a fault-injecting trace.Stream wrapper.
//
// Everything here is a pure function of an explicit seed and the site
// key or byte/record position it is applied to — never of wall-clock
// time, scheduling, or global random state — so a chaos run reproduces
// bit-for-bit: the same seed always kills the same cells, flips the
// same bits, and truncates the same streams, at any worker count.
package faultinject

import (
	"fmt"
	"io"
	"sync"

	"ldis/internal/mem"
	"ldis/internal/trace"
)

// splitmix64 is the avalanche mixer all injectors derive their
// decisions from.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashKey folds a site key into a seed (FNV-1a then splitmix).
func hashKey(seed uint64, key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return splitmix64(h ^ seed)
}

// frac maps a hash to [0,1).
func frac(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Injector selects faulting sites deterministically from a seed. A
// site is any string key — the experiment engine uses
// "<experiment>/<benchmark>/<column>". Rate is the fraction of sites
// that fault; TransientFrac is the fraction of those whose fault
// clears after the first attempt, modelling failures a retry absorbs.
type Injector struct {
	seed      uint64
	rate      float64
	transient float64

	mu       sync.Mutex
	attempts map[string]int
}

// New returns an injector failing ~rate of sites, with ~transientFrac
// of the failing sites recovering after their first attempt.
func New(seed uint64, rate, transientFrac float64) *Injector {
	return &Injector{seed: seed, rate: rate, transient: transientFrac, attempts: make(map[string]int)}
}

// DefaultRate and DefaultTransientFrac are the chaos-suite defaults:
// roughly a third of sites fault, half of the faults are transient.
const (
	DefaultRate          = 0.3
	DefaultTransientFrac = 0.5
)

// NewDefault returns an injector with the chaos-suite default rates.
func NewDefault(seed uint64) *Injector {
	return New(seed, DefaultRate, DefaultTransientFrac)
}

// Site reports, without consuming an attempt, whether the key is a
// faulting site and whether its fault is transient. Pure function of
// (seed, key).
func (j *Injector) Site(key string) (faulty, transient bool) {
	faulty = frac(hashKey(j.seed, key)) < j.rate
	if !faulty {
		return false, false
	}
	transient = frac(hashKey(j.seed^0xc5a7, key)) < j.transient
	return faulty, transient
}

// Fault reports whether the current attempt at the site should fail,
// and advances the site's attempt counter. Persistent sites fail every
// attempt; transient sites fail only the first.
func (j *Injector) Fault(key string) bool {
	j.mu.Lock()
	attempt := j.attempts[key]
	j.attempts[key] = attempt + 1
	j.mu.Unlock()
	faulty, transient := j.Site(key)
	if !faulty {
		return false
	}
	if transient && attempt >= 1 {
		return false
	}
	return true
}

// MaybePanic panics with a deterministic message if the current
// attempt at the site faults. This is the task-level injector: wrap it
// around a scheduler cell to chaos-test the engine's panic isolation.
func (j *Injector) MaybePanic(key string) {
	if j.Fault(key) {
		panic("faultinject: injected panic at " + key)
	}
}

// CorruptReader wraps r, flipping one bit in ~rate of the bytes read.
// Which bytes and which bits depend only on (seed, absolute offset),
// so the corruption pattern is independent of read chunking.
type CorruptReader struct {
	r    io.Reader
	seed uint64
	rate float64
	off  int64
}

// NewCorruptReader returns the bit-flipping reader.
func NewCorruptReader(r io.Reader, seed uint64, rate float64) *CorruptReader {
	return &CorruptReader{r: r, seed: seed, rate: rate}
}

// Read implements io.Reader.
func (c *CorruptReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	for i := 0; i < n; i++ {
		h := splitmix64(c.seed ^ uint64(c.off+int64(i)))
		if frac(h) < c.rate {
			p[i] ^= 1 << (h >> 56 & 7)
		}
	}
	c.off += int64(n)
	return n, err
}

// StreamFault selects the failure mode of a FaultyStream.
type StreamFault int

const (
	// TruncateStream ends the stream early at the fault position.
	TruncateStream StreamFault = iota
	// PanicStream panics at the fault position.
	PanicStream
	// CorruptAddrStream flips one address bit per access from the
	// fault position on.
	CorruptAddrStream
)

// FaultyStream wraps a trace.Stream and injects one deterministic
// fault at a seed-chosen position within the first window accesses.
type FaultyStream struct {
	inner trace.Stream
	mode  StreamFault
	seed  uint64
	at    int64
	pos   int64
}

// NewFaultyStream wraps inner. The fault position is
// splitmix64(seed) % window (window must be positive).
func NewFaultyStream(inner trace.Stream, mode StreamFault, seed uint64, window int64) *FaultyStream {
	if window <= 0 {
		panic("faultinject: NewFaultyStream window must be positive")
	}
	return &FaultyStream{inner: inner, mode: mode, seed: seed, at: int64(splitmix64(seed) % uint64(window))}
}

// FaultPos returns the access index at which the fault fires.
func (f *FaultyStream) FaultPos() int64 { return f.at }

// Next implements trace.Stream.
func (f *FaultyStream) Next() (mem.Access, bool) {
	pos := f.pos
	f.pos++
	if pos < f.at {
		return f.inner.Next()
	}
	switch f.mode {
	case TruncateStream:
		return mem.Access{}, false
	case PanicStream:
		panic(fmt.Sprintf("faultinject: injected stream panic at access %d", f.at))
	default: // CorruptAddrStream
		a, ok := f.inner.Next()
		if !ok {
			return mem.Access{}, false
		}
		h := splitmix64(f.seed ^ uint64(pos))
		a.Addr ^= mem.Addr(1) << (h % 32)
		return a, true
	}
}
