package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"ldis/internal/mem"
	"ldis/internal/trace"
)

// TestInjectorDeterministic: two injectors with the same seed make
// identical decisions regardless of the order sites are consulted in.
func TestInjectorDeterministic(t *testing.T) {
	keys := make([]string, 50)
	for i := range keys {
		keys[i] = fmt.Sprintf("fig6/bench%d/%d", i, i%4)
	}
	a := NewDefault(42)
	b := NewDefault(42)
	// Consult b in reverse order: per-site state must not leak across
	// sites.
	got := make(map[string]bool, len(keys))
	for i := len(keys) - 1; i >= 0; i-- {
		got[keys[i]] = b.Fault(keys[i])
	}
	for _, k := range keys {
		if a.Fault(k) != got[k] {
			t.Fatalf("site %s: decision depends on consultation order", k)
		}
	}
	// A different seed must produce a different fault set.
	c := NewDefault(43)
	same := true
	for _, k := range keys {
		fa, _ := a.Site(k)
		fc, _ := c.Site(k)
		if fa != fc {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 selected identical fault sets across 50 sites")
	}
}

// TestInjectorRate: the selected fault fraction tracks the configured
// rate.
func TestInjectorRate(t *testing.T) {
	j := New(7, 0.25, 0)
	faults := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if f, _ := j.Site(fmt.Sprintf("site-%d", i)); f {
			faults++
		}
	}
	if got := float64(faults) / n; got < 0.2 || got > 0.3 {
		t.Errorf("fault rate %.3f, want ~0.25", got)
	}
	none := New(7, 0, 0)
	if f, _ := none.Site("anything"); f {
		t.Error("rate 0 injector selected a fault")
	}
	all := New(7, 1.01, 0)
	if f, _ := all.Site("anything"); !f {
		t.Error("rate >1 injector missed a fault")
	}
}

// TestInjectorTransientRecovers: a transient site fails its first
// attempt and passes every later one; persistent sites fail forever.
func TestInjectorTransientRecovers(t *testing.T) {
	j := New(99, 1.0, 1.0) // every site faults, every fault transient
	if !j.Fault("cell") {
		t.Fatal("transient site passed its first attempt")
	}
	for i := 0; i < 3; i++ {
		if j.Fault("cell") {
			t.Fatal("transient site failed a retry")
		}
	}
	p := New(99, 1.0, 0) // persistent
	for i := 0; i < 3; i++ {
		if !p.Fault("cell") {
			t.Fatal("persistent site recovered")
		}
	}
}

// TestMaybePanic: the panic carries the site key and fires only for
// selected sites.
func TestMaybePanic(t *testing.T) {
	j := New(1, 1.0, 0)
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(fmt.Sprint(r), "fig6/mcf/2") {
				t.Errorf("panic = %v", r)
			}
		}()
		j.MaybePanic("fig6/mcf/2")
		t.Error("MaybePanic did not panic at rate 1")
	}()
	quiet := New(1, 0, 0)
	quiet.MaybePanic("fig6/mcf/2") // must not panic
}

// TestCorruptReaderDeterministicAcrossChunking: the flipped bytes
// depend on absolute offset, not on read sizes.
func TestCorruptReaderDeterministicAcrossChunking(t *testing.T) {
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	whole, err := io.ReadAll(NewCorruptReader(bytes.NewReader(src), 5, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	chunked := make([]byte, 0, len(src))
	cr := NewCorruptReader(bytes.NewReader(src), 5, 0.1)
	buf := make([]byte, 7) // awkward chunk size
	for {
		n, err := cr.Read(buf)
		chunked = append(chunked, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(whole, chunked) {
		t.Fatal("corruption pattern depends on read chunking")
	}
	flipped := 0
	for i := range src {
		if whole[i] != src[i] {
			flipped++
		}
	}
	if flipped == 0 || flipped > len(src)/5 {
		t.Errorf("flipped %d of %d bytes at rate 0.1", flipped, len(src))
	}
}

// TestCorruptReaderAgainstDecoder: a bit-flipped trace must decode to
// a positioned CorruptError in strict mode and a valid prefix in
// lenient mode — never a panic, never silent garbage acceptance for a
// corrupted kind byte.
func TestCorruptReaderAgainstDecoder(t *testing.T) {
	accs := make([]mem.Access, 200)
	for i := range accs {
		accs[i] = mem.Access{Addr: mem.Addr(i * 64), PC: 0x400000, Kind: mem.Load, Instret: 1}
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, accs); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 8; seed++ {
		data, err := io.ReadAll(NewCorruptReader(bytes.NewReader(buf.Bytes()), seed, 0.02))
		if err != nil {
			t.Fatal(err)
		}
		strict, serr := trace.Read(bytes.NewReader(data))
		prefix, lerr := trace.ReadLenient(bytes.NewReader(data))
		if serr == nil {
			// Corruption may have missed every validated field; then
			// both modes agree.
			if lerr != nil {
				t.Errorf("seed %d: strict ok but lenient err %v", seed, lerr)
			}
			continue
		}
		if len(strict) != 0 {
			t.Errorf("seed %d: strict returned %d records with error", seed, len(strict))
		}
		var ce *trace.CorruptError
		if !errors.As(serr, &ce) {
			t.Fatalf("seed %d: strict err %v is not a CorruptError", seed, serr)
		}
		if ce.Record >= 0 && int64(len(prefix)) != ce.Record {
			t.Errorf("seed %d: lenient prefix %d != corrupt record %d", seed, len(prefix), ce.Record)
		}
	}
}

// TestFaultyStreamTruncate ends the stream at the seed-chosen
// position.
func TestFaultyStreamTruncate(t *testing.T) {
	accs := make([]mem.Access, 100)
	fs := NewFaultyStream(trace.NewSliceStream(accs), TruncateStream, 3, 50)
	got := int64(len(trace.Collect(fs, 0)))
	if got != fs.FaultPos() {
		t.Errorf("truncated after %d accesses, want %d", got, fs.FaultPos())
	}
	// Same seed, same position.
	fs2 := NewFaultyStream(trace.NewSliceStream(accs), TruncateStream, 3, 50)
	if fs2.FaultPos() != fs.FaultPos() {
		t.Error("fault position not deterministic")
	}
}

// TestFaultyStreamPanic panics deterministically at the fault
// position.
func TestFaultyStreamPanic(t *testing.T) {
	accs := make([]mem.Access, 100)
	fs := NewFaultyStream(trace.NewSliceStream(accs), PanicStream, 9, 20)
	seen := int64(0)
	defer func() {
		if r := recover(); r == nil {
			t.Error("stream never panicked")
		} else if seen != fs.FaultPos() {
			t.Errorf("panicked after %d accesses, want %d", seen, fs.FaultPos())
		}
	}()
	for {
		if _, ok := fs.Next(); !ok {
			break
		}
		seen++
	}
}

// TestFaultyStreamCorruptAddr flips addresses only from the fault
// position on, and identically for identical seeds.
func TestFaultyStreamCorruptAddr(t *testing.T) {
	mk := func() []mem.Access {
		accs := make([]mem.Access, 40)
		for i := range accs {
			accs[i] = mem.Access{Addr: mem.Addr(i * 64)}
		}
		return accs
	}
	orig := mk()
	a := trace.Collect(NewFaultyStream(trace.NewSliceStream(mk()), CorruptAddrStream, 11, 20), 0)
	b := trace.Collect(NewFaultyStream(trace.NewSliceStream(mk()), CorruptAddrStream, 11, 20), 0)
	fp := NewFaultyStream(trace.NewSliceStream(nil), CorruptAddrStream, 11, 20).FaultPos()
	if len(a) != len(orig) {
		t.Fatalf("corrupt stream yielded %d accesses", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d differs between identical seeds", i)
		}
		clean := a[i].Addr == orig[i].Addr
		if int64(i) < fp && !clean {
			t.Errorf("access %d corrupted before fault position %d", i, fp)
		}
		if int64(i) >= fp && clean {
			t.Errorf("access %d not corrupted at/after fault position %d", i, fp)
		}
	}
}
