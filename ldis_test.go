package ldis

import (
	"strings"
	"testing"

	"ldis/internal/mem"
	"ldis/internal/trace"
)

func TestDefaultDistillConfig(t *testing.T) {
	cfg := DefaultDistillConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.SizeBytes != 1<<20 || cfg.Ways != 8 || cfg.WOCWays != 2 {
		t.Errorf("default config geometry: %+v", cfg)
	}
}

func TestBenchmarksLists(t *testing.T) {
	if got := len(Benchmarks()); got != 27 {
		t.Errorf("Benchmarks() returned %d, want 27", got)
	}
	main := MainBenchmarks()
	if len(main) != 16 || main[0] != "art" || main[15] != "health" {
		t.Errorf("MainBenchmarks wrong: %v", main)
	}
	// The returned slice must be a copy.
	main[0] = "corrupted"
	if MainBenchmarks()[0] != "art" {
		t.Error("MainBenchmarks leaked internal state")
	}
}

func mustSim(t *testing.T, opts ...Option) *Sim {
	t.Helper()
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBaselineSimRunWorkload(t *testing.T) {
	sim := mustSim(t, WithTraditional(1<<20, 8))
	res, err := sim.RunWorkload("twolf", 50000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 50000 || res.Instructions == 0 || res.L2Misses == 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if res.MPKI <= 0 {
		t.Errorf("MPKI = %v", res.MPKI)
	}
	if !strings.Contains(res.String(), "twolf") {
		t.Error("String() missing benchmark name")
	}
}

func TestRunWorkloadUnknownBenchmark(t *testing.T) {
	if _, err := mustSim(t, WithTraditional(1<<20, 8)).RunWorkload("nope", 10); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestDistillSimOutcomes(t *testing.T) {
	sim := mustSim(t, WithDistill(DefaultDistillConfig()))
	res, err := sim.RunWorkload("mcf", 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.WOCHits == 0 {
		t.Error("mcf on a distill cache should produce WOC hits")
	}
	if sim.DistillStats() == nil {
		t.Error("DistillStats missing")
	}
	if !strings.Contains(res.String(), "WOC-hit") {
		t.Error("String() missing outcome breakdown")
	}
}

func TestDistillBeatsBaselineOnLowSpatialWorkload(t *testing.T) {
	const n = 400000
	base, err := mustSim(t, WithTraditional(1<<20, 8)).RunWorkload("health", n)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := mustSim(t, WithDistill(DefaultDistillConfig())).RunWorkload("health", n)
	if err != nil {
		t.Fatal(err)
	}
	if dist.MPKI >= base.MPKI {
		t.Errorf("distill MPKI %.2f not below baseline %.2f on health", dist.MPKI, base.MPKI)
	}
}

func TestTraditionalSimValidation(t *testing.T) {
	if _, err := New(WithTraditional(100, 3)); err == nil {
		t.Error("invalid geometry should error")
	}
	sim, err := New(WithTraditional(2<<20, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunWorkload("art", 10000); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedAndFACSims(t *testing.T) {
	if _, err := New(WithCompression("nope")); err == nil {
		t.Error("unknown benchmark should error")
	}
	cs, err := New(WithCompression("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.RunWorkload("mcf", 20000); err != nil {
		t.Fatal(err)
	}
	if _, err := New(WithFAC(DefaultDistillConfig(), "nope")); err == nil {
		t.Error("unknown benchmark should error")
	}
	fs, err := New(WithFAC(DefaultDistillConfig(), "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.RunWorkload("mcf", 20000); err != nil {
		t.Fatal(err)
	}
}

func TestSFPSim(t *testing.T) {
	if _, err := New(WithSFP(3)); err == nil {
		t.Error("non-power-of-two predictor should error")
	}
	sim, err := New(WithSFP(1 << 12))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunWorkload("mcf", 20000); err != nil {
		t.Fatal(err)
	}
}

func TestRunStreamCustomTrace(t *testing.T) {
	accs := []mem.Access{
		{Addr: 0, Kind: mem.Load, Instret: 10},
		{Addr: 64, Kind: mem.Store, Instret: 10},
		{Addr: 0, Kind: mem.Load, Instret: 10},
	}
	sim := mustSim(t, WithTraditional(1<<20, 8))
	res := sim.RunStream("custom", trace.NewSliceStream(accs), 0)
	if res.Accesses != 3 || res.Instructions != 30 {
		t.Errorf("custom stream result: %+v", res)
	}
}

func TestMeasureIPC(t *testing.T) {
	base, dist, err := MeasureIPC("health", 150000)
	if err != nil {
		t.Fatal(err)
	}
	if base.IPC <= 0 || dist.IPC <= 0 {
		t.Fatalf("degenerate IPCs: %+v %+v", base, dist)
	}
	// health is the paper's best case: fewer misses must show up as
	// higher IPC.
	if dist.MPKI < base.MPKI && dist.IPC <= base.IPC {
		t.Errorf("misses dropped (%.1f -> %.1f) but IPC did not rise (%.3f -> %.3f)",
			base.MPKI, dist.MPKI, base.IPC, dist.IPC)
	}
	if _, _, err := MeasureIPC("nope", 10); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{"fig1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig13",
		"table1", "table2", "table3", "table4", "table5", "table6", "overheads"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestRunExperimentStatic(t *testing.T) {
	o := DefaultExperimentOptions()
	tables, err := RunExperiment("table3", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || !strings.Contains(tables[0].String(), "12.") {
		t.Errorf("table3 output unexpected:\n%v", tables[0])
	}
	if _, err := RunExperiment("nope", o); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunExperimentSmallDynamic(t *testing.T) {
	o := DefaultExperimentOptions()
	o.Accesses = 30000
	o.Benchmarks = []string{"ammp"}
	tables, err := RunExperiment("fig6", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].NumRows() != 3 { // ammp + avg + avgNomcf
		t.Errorf("fig6 rows = %d", tables[0].NumRows())
	}
}
