// Package ldis is a library-scale reproduction of "Line Distillation:
// Increasing Cache Capacity by Filtering Unused Words in Cache Lines"
// (Qureshi, Suleman, Patt — HPCA 2007).
//
// The package exposes a small facade over the internal simulator: build
// a cache organization (traditional, distill, compressed, or
// SFP-predicted) with New — optionally refined by the related-work
// modifiers WithToucheTags, WithCleanCopyBack, and WithWayMemo — pick
// a workload, run it, and read the results. The full experiment
// harness that regenerates every table
// and figure of the paper lives behind RunExperiment and the ldisexp
// command.
//
// Quick start:
//
//	sim, _ := ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()))
//	res, _ := sim.RunWorkload("mcf", 1_000_000)
//	fmt.Println(res)
package ldis

import (
	"fmt"
	"strings"

	"ldis/internal/cache"
	"ldis/internal/cpu"
	"ldis/internal/distill"
	"ldis/internal/exp"
	"ldis/internal/hierarchy"
	"ldis/internal/obs"
	"ldis/internal/sfp"
	"ldis/internal/stats"
	"ldis/internal/trace"
	"ldis/internal/workload"

	icompress "ldis/internal/compress"
	"ldis/internal/wordstore"
)

// DistillConfig re-exports the distill cache configuration.
type DistillConfig = distill.Config

// ToucheTagsConfig re-exports the Touché compressed-tag configuration
// used by WithToucheTags.
type ToucheTagsConfig = wordstore.ToucheConfig

// CopyBackConfig re-exports the clean copy-back configuration used by
// WithCleanCopyBack.
type CopyBackConfig = distill.CopyBackConfig

// WayMemoConfig re-exports the way-memoization configuration used by
// WithWayMemo.
type WayMemoConfig = cache.WayMemoConfig

// DefaultDistillConfig returns the paper's LDIS-MT-RC configuration: a
// 1MB 8-way cache with 6 LOC ways + 2 WOC ways, median-threshold
// filtering, and the reverter circuit.
func DefaultDistillConfig() DistillConfig { return distill.DefaultConfig() }

// Benchmarks lists the names of all built-in synthetic benchmarks (the
// paper's 16 memory-intensive ones plus the 11 cache-insensitive ones
// from Appendix A).
func Benchmarks() []string { return workload.Names() }

// MainBenchmarks lists the paper's 16 memory-intensive benchmarks in
// paper order.
func MainBenchmarks() []string { return append([]string(nil), workload.MainNames...) }

// Result summarizes one simulation run.
type Result struct {
	Benchmark    string
	Accesses     uint64
	Instructions uint64
	L2Accesses   uint64
	L2Misses     uint64
	MPKI         float64

	// Distill-cache outcome breakdown (zero for other organizations).
	LOCHits, WOCHits, HoleMisses, LineMisses uint64
}

// String implements fmt.Stringer.
func (r Result) String() string {
	s := fmt.Sprintf("%s: %d accesses, %d instructions, L2 misses %d (MPKI %.2f)",
		r.Benchmark, r.Accesses, r.Instructions, r.L2Misses, r.MPKI)
	if r.LOCHits+r.WOCHits+r.HoleMisses > 0 {
		s += fmt.Sprintf(" [LOC-hit %d, WOC-hit %d, hole-miss %d, line-miss %d]",
			r.LOCHits, r.WOCHits, r.HoleMisses, r.LineMisses)
	}
	return s
}

// Sim is a ready-to-run L1D+L2 hierarchy.
type Sim struct {
	sys     *hierarchy.System
	distill *distill.Cache
	obsCell *obs.Cell
}

// Observer is a metrics registry a Sim records into when built with
// WithObserver: cache eviction/writeback counters, distill outcome
// counters, the distilled-line size histogram, and span timings land
// here. Snapshot returns everything in deterministic order.
type Observer = obs.Registry

// NewObserver returns an empty metrics registry for WithObserver.
func NewObserver() *Observer { return obs.NewRegistry() }

// Option configures a Sim built by New. Exactly one cache-organization
// option — WithTraditional, WithDistill, WithCompression, WithFAC, or
// WithSFP — must be given. Modifier options refine an organization:
// WithToucheTags and WithCleanCopyBack compose with WithDistill and
// WithFAC, WithWayMemo with WithTraditional. WithObserver composes
// with anything.
type Option func(*simSpec)

// simSpec accumulates the options before New builds anything; orgs
// records every organization option seen so New can report conflicts
// by name, and builders pull the modifier configs from the spec.
type simSpec struct {
	orgs  []string
	build func(spec *simSpec, co *obs.Cell) (*Sim, error)
	reg   *obs.Registry

	touche   *wordstore.ToucheConfig
	copyBack *distill.CopyBackConfig
	wayMemo  *cache.WayMemoConfig
}

func (s *simSpec) setOrg(name string, build func(spec *simSpec, co *obs.Cell) (*Sim, error)) {
	s.orgs = append(s.orgs, name)
	s.build = build
}

// applyDistillMods folds the distill-compatible modifiers into cfg.
func (s *simSpec) applyDistillMods(cfg DistillConfig) DistillConfig {
	cfg.Touche = s.touche
	cfg.CopyBack = s.copyBack
	return cfg
}

// WithTraditional selects a traditional L2 of the given geometry
// (the paper's baseline is WithTraditional(1<<20, 8)).
func WithTraditional(sizeBytes, ways int) Option {
	return func(s *simSpec) {
		s.setOrg("WithTraditional", func(spec *simSpec, co *obs.Cell) (*Sim, error) {
			cfg := cache.Config{Name: "trad", SizeBytes: sizeBytes, Ways: ways,
				WayMemo: spec.wayMemo, Obs: co}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			sys, _ := hierarchy.Traditional(cfg)
			return &Sim{sys: sys}, nil
		})
	}
}

// WithDistill selects a distill-cache L2 (paper Section 5).
func WithDistill(cfg DistillConfig) Option {
	return func(s *simSpec) {
		s.setOrg("WithDistill", func(spec *simSpec, co *obs.Cell) (*Sim, error) {
			cfg = spec.applyDistillMods(cfg)
			cfg.Obs = co
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			sys, dc := hierarchy.Distill(cfg)
			return &Sim{sys: sys, distill: dc}, nil
		})
	}
}

// WithCompression selects the CMPR comparator (compressed traditional
// cache, Section 8.1) over the named benchmark's value model.
func WithCompression(benchmark string) Option {
	return func(s *simSpec) {
		s.setOrg("WithCompression", func(spec *simSpec, co *obs.Cell) (*Sim, error) {
			prof, err := workload.ByName(benchmark)
			if err != nil {
				return nil, err
			}
			sys, _ := hierarchy.Compressed(icompress.DefaultCMPRConfig(), prof.Values())
			return &Sim{sys: sys}, nil
		})
	}
}

// WithFAC selects a distill cache whose WOC installs use
// footprint-aware compression (Section 8.2) over the named benchmark's
// value model.
func WithFAC(cfg DistillConfig, benchmark string) Option {
	return func(s *simSpec) {
		s.setOrg("WithFAC", func(spec *simSpec, co *obs.Cell) (*Sim, error) {
			prof, err := workload.ByName(benchmark)
			if err != nil {
				return nil, err
			}
			cfg = spec.applyDistillMods(cfg)
			cfg.Obs = co
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			sys, dc := hierarchy.FAC(cfg, prof.Values())
			return &Sim{sys: sys, distill: dc}, nil
		})
	}
}

// WithSFP selects the spatial-footprint-predictor comparator (Section
// 9 / Figure 13). predictorEntries <= 0 keeps the default table size.
func WithSFP(predictorEntries int) Option {
	return func(s *simSpec) {
		s.setOrg("WithSFP", func(spec *simSpec, co *obs.Cell) (*Sim, error) {
			cfg := sfp.DefaultConfig()
			if predictorEntries > 0 {
				cfg.PredictorEntries = predictorEntries
			}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			sys, _ := hierarchy.SFP(cfg)
			return &Sim{sys: sys}, nil
		})
	}
}

// WithToucheTags replaces the WOC's per-word full tags with
// Touché-style compressed superblock signatures (arXiv 1909.00553):
// resident lines of a superblock share one hashed signature entry,
// checksum-disambiguated so an alias is always a safe miss, never a
// false hit. Composes with WithDistill and WithFAC. Tag-area pricing
// lives in costmodel.ToucheTagArea.
func WithToucheTags(cfg ToucheTagsConfig) Option {
	return func(s *simSpec) {
		c := cfg
		s.touche = &c
	}
}

// WithTouchéTags is WithToucheTags under the paper's accented
// spelling.
var WithTouchéTags = WithToucheTags

// WithCleanCopyBack gates copy-back of clean L1 victims into the WOC
// on a reuse-distance predictor fed from the Mattson/SHARDS stack
// (arXiv 2105.14442). Composes with WithDistill and WithFAC.
func WithCleanCopyBack(cfg CopyBackConfig) Option {
	return func(s *simSpec) {
		c := cfg
		s.copyBack = &c
	}
}

// WithWayMemo adds way-memoization accounting to a traditional L2
// (arXiv 0710.4703): a per-set memo buffer remembers last-hit ways so
// repeat accesses skip the parallel tag probe. Functionally
// transparent; energy pricing lives in costmodel.WayMemoEnergyFor.
// Composes with WithTraditional.
func WithWayMemo(cfg WayMemoConfig) Option {
	return func(s *simSpec) {
		c := cfg
		s.wayMemo = &c
	}
}

// WithObserver wires the simulator's metrics into reg. A nil reg (or
// omitting the option) disables observability entirely: every handle
// on the hot path is a nil no-op.
func WithObserver(reg *obs.Registry) Option {
	return func(s *simSpec) { s.reg = reg }
}

// New builds a simulator from functional options — the package's
// single constructor:
//
//	sim, err := ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()),
//		ldis.WithObserver(reg))
func New(opts ...Option) (*Sim, error) {
	var spec simSpec
	for _, o := range opts {
		o(&spec)
	}
	if len(spec.orgs) == 0 {
		return nil, fmt.Errorf("ldis.New: no cache organization selected; pass one of WithTraditional, WithDistill, WithCompression, WithFAC, WithSFP")
	}
	if len(spec.orgs) > 1 {
		return nil, fmt.Errorf("ldis.New: conflicting organization options: %s", strings.Join(spec.orgs, ", "))
	}
	org := spec.orgs[0]
	distillOrg := org == "WithDistill" || org == "WithFAC"
	if spec.touche != nil && !distillOrg {
		return nil, fmt.Errorf("ldis.New: WithToucheTags requires WithDistill or WithFAC, got %s", org)
	}
	if spec.copyBack != nil && !distillOrg {
		return nil, fmt.Errorf("ldis.New: WithCleanCopyBack requires WithDistill or WithFAC, got %s", org)
	}
	if spec.wayMemo != nil && org != "WithTraditional" {
		return nil, fmt.Errorf("ldis.New: WithWayMemo requires WithTraditional, got %s", org)
	}
	co := obs.NewCell(spec.reg)
	sim, err := spec.build(&spec, co)
	if err != nil {
		return nil, err
	}
	sim.obsCell = co
	return sim, nil
}

// RunWorkload drives n accesses of the named synthetic benchmark
// through the hierarchy and summarizes the outcome. It can be called
// repeatedly (the stream continues where the previous call stopped only
// if the same Stream is reused; each call here starts a fresh stream,
// which is the common single-shot use).
func (s *Sim) RunWorkload(benchmark string, n int) (Result, error) {
	prof, err := workload.ByName(benchmark)
	if err != nil {
		return Result{}, err
	}
	return s.RunStream(benchmark, prof.Stream(), n), nil
}

// RunStream drives up to n accesses from an arbitrary trace stream.
func (s *Sim) RunStream(label string, st trace.Stream, n int) Result {
	s.sys.Run(st, n)
	r := Result{
		Benchmark:    label,
		Accesses:     s.sys.DemandAccesses,
		Instructions: s.sys.Instructions,
		L2Accesses:   s.sys.L2.Accesses(),
		L2Misses:     s.sys.L2.Misses(),
		MPKI:         stats.MPKI(s.sys.L2.Misses(), s.sys.Instructions),
	}
	if s.distill != nil {
		ds := s.distill.Stats()
		r.LOCHits, r.WOCHits = ds.LOCHits, ds.WOCHits
		r.HoleMisses, r.LineMisses = ds.HoleMisses, ds.LineMisses
	}
	return r
}

// DistillStats exposes the distill cache's detailed statistics (nil for
// non-distill sims).
func (s *Sim) DistillStats() *distill.Stats {
	if s.distill == nil {
		return nil
	}
	return s.distill.Stats()
}

// System exposes the underlying hierarchy for advanced use (custom
// streams, window measurements).
func (s *Sim) System() *hierarchy.System { return s.sys }

// IPCResult reports an execution-driven timing run (Section 7.4).
type IPCResult struct {
	Benchmark string
	IPC       float64
	Cycles    float64
	MPKI      float64
}

// MeasureIPC runs the named benchmark through both the baseline and the
// distill-cache machines using the paper's timing parameters and
// returns (baseline, distill) results.
func MeasureIPC(benchmark string, accesses int) (IPCResult, IPCResult, error) {
	prof, err := workload.ByName(benchmark)
	if err != nil {
		return IPCResult{}, IPCResult{}, err
	}
	sysB, _ := hierarchy.Baseline("baseline", 1<<20, 8)
	rB := cpu.New(cpu.DefaultConfig()).Run(sysB, prof, prof.Stream(), accesses)

	sysD, _ := hierarchy.Distill(distill.DefaultConfig())
	rD := cpu.New(cpu.DistillConfig()).Run(sysD, prof, prof.Stream(), accesses)

	mk := func(r cpu.Result, sys *hierarchy.System) IPCResult {
		return IPCResult{
			Benchmark: benchmark,
			IPC:       r.IPC(),
			Cycles:    r.Cycles,
			MPKI:      stats.MPKI(sys.L2.Misses(), r.Instructions),
		}
	}
	return mk(rB, sysB), mk(rD, sysD), nil
}

// ExperimentIDs lists the paper-experiment identifiers understood by
// RunExperiment (fig1..fig13, table1..table6, overheads).
func ExperimentIDs() []string { return exp.IDs() }

// ExperimentOptions re-exports the experiment harness options.
type ExperimentOptions = exp.Options

// DefaultExperimentOptions returns sensible interactive defaults.
func DefaultExperimentOptions() ExperimentOptions { return exp.DefaultOptions() }

// RunExperiment regenerates one of the paper's tables or figures and
// returns the rendered tables.
func RunExperiment(id string, o ExperimentOptions) ([]*stats.Table, error) {
	return exp.Run(id, o)
}
