// Benchmarks regenerating the paper's tables and figures. Each bench
// runs the corresponding experiment (on a reduced access budget so the
// suite stays minutes-scale) and reports the experiment's headline
// number as a custom metric alongside simulator throughput. For
// full-scale regeneration use: go run ./cmd/ldisexp -accesses 3000000 all
package ldis

import (
	"fmt"
	"testing"

	"ldis/internal/cache"
	"ldis/internal/distill"
	"ldis/internal/dram"
	"ldis/internal/exp"
	"ldis/internal/hierarchy"
	"ldis/internal/mem"
	"ldis/internal/prefetch"
	"ldis/internal/sampler"
	"ldis/internal/trace"
	"ldis/internal/workload"
)

// benchOpts trades precision for bench runtime.
func benchOpts(benchmarks ...string) exp.Options {
	return exp.Options{Accesses: 250_000, WarmupFrac: 0.3, Benchmarks: benchmarks}
}

// reportAccesses converts experiment work into a throughput metric.
func reportAccesses(b *testing.B, accessesPerIter int) {
	b.ReportMetric(float64(accessesPerIter*b.N)/b.Elapsed().Seconds(), "accesses/s")
}

func BenchmarkFig1WordsUsed(b *testing.B) {
	o := benchOpts("art", "mcf", "galgel")
	var mean float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig1(o)
		if err != nil {
			b.Fatal(err)
		}
		mean = rows[1].Mean // mcf
	}
	b.ReportMetric(mean, "mcf-words-used")
	reportAccesses(b, o.Accesses*3)
}

func BenchmarkFig2RecencyStabilization(b *testing.B) {
	o := benchOpts("twolf", "ammp")
	var top float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig2(o)
		if err != nil {
			b.Fatal(err)
		}
		top = rows[0].Pos0to3()
	}
	b.ReportMetric(100*top, "twolf-pct-changes-pos0-3")
	reportAccesses(b, o.Accesses*2)
}

func BenchmarkTable2Baseline(b *testing.B) {
	o := benchOpts("mcf", "health")
	var mpki float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		mpki = rows[0].MPKI
	}
	b.ReportMetric(mpki, "mcf-MPKI")
	reportAccesses(b, o.Accesses*2)
}

func BenchmarkFig6LDISConfigs(b *testing.B) {
	o := benchOpts("ammp", "twolf", "swim")
	var rc float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		rc = exp.SummarizeFig6(rows).Avg.RC
	}
	b.ReportMetric(rc, "avg-MPKI-reduction-pct")
	reportAccesses(b, o.Accesses*3*4) // 4 configs per benchmark
}

func BenchmarkFig7HitMissBreakdown(b *testing.B) {
	o := benchOpts("mcf")
	var woc float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		woc = rows[0].WOCHit
	}
	b.ReportMetric(100*woc, "mcf-WOC-hit-pct")
	reportAccesses(b, o.Accesses*2)
}

func BenchmarkFig8Capacity(b *testing.B) {
	o := benchOpts("health")
	var distill float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		distill = rows[0].Distill
	}
	b.ReportMetric(distill, "health-distill-reduction-pct")
	reportAccesses(b, o.Accesses*4)
}

func BenchmarkFig9IPC(b *testing.B) {
	o := benchOpts("health", "art")
	var gmean float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		gmean = exp.Fig9GMean(rows)
	}
	b.ReportMetric(gmean, "gmean-IPC-improvement-pct")
	reportAccesses(b, o.Accesses*2*2)
}

func BenchmarkTable3Storage(b *testing.B) {
	var pct string
	for i := 0; i < b.N; i++ {
		t, err := exp.Table3()
		if err != nil {
			b.Fatal(err)
		}
		pct = t.Title()
	}
	_ = pct
}

func BenchmarkFig10Compressibility(b *testing.B) {
	o := benchOpts("mcf")
	var frac float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		frac = rows[0].UsedWords[0] + rows[0].UsedWords[1] // <= 1/4 size
	}
	b.ReportMetric(100*frac, "mcf-used-words-quarter-pct")
	reportAccesses(b, o.Accesses)
}

func BenchmarkFig11FAC(b *testing.B) {
	o := benchOpts("health")
	var fac float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		fac = rows[0].FAC4x
	}
	b.ReportMetric(fac, "health-FAC-reduction-pct")
	reportAccesses(b, o.Accesses*5)
}

func BenchmarkFig13SFP(b *testing.B) {
	o := benchOpts("art")
	var ldisRed, sfpRed float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig13(o)
		if err != nil {
			b.Fatal(err)
		}
		ldisRed, sfpRed = rows[0].LDIS, rows[0].SFP64kB
	}
	b.ReportMetric(ldisRed, "art-LDIS-reduction-pct")
	b.ReportMetric(sfpRed, "art-SFP64kB-reduction-pct")
	reportAccesses(b, o.Accesses*4)
}

func BenchmarkTable5Insensitive(b *testing.B) {
	o := benchOpts("lucas")
	var ldis float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table5(o)
		if err != nil {
			b.Fatal(err)
		}
		ldis = rows[0].LDIS1MB
	}
	b.ReportMetric(ldis, "lucas-LDIS-MPKI")
	reportAccesses(b, o.Accesses*4)
}

func BenchmarkTable6WordsVsSize(b *testing.B) {
	o := benchOpts("art")
	var grow float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table6(o)
		if err != nil {
			b.Fatal(err)
		}
		grow = rows[0].AvgWords["2.00MB"] - rows[0].AvgWords["0.75MB"]
	}
	b.ReportMetric(grow, "art-words-growth-0.75-to-2MB")
	reportAccesses(b, o.Accesses*5)
}

// BenchmarkSchedulerFanOut measures the (benchmark × configuration)
// grid scheduler at several worker counts. Fig6 on three benchmarks
// exposes 12 independent simulation cells; on a multicore box the
// accesses/s metric should scale with workers until cells run out.
func BenchmarkSchedulerFanOut(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			o := benchOpts("ammp", "twolf", "swim")
			o.Parallel = workers
			exp.ResetSimAccesses()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exp.Fig6(o); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(exp.SimAccesses())/b.Elapsed().Seconds(), "accesses/s")
		})
	}
}

// ---------------------------------------------------------------------
// Raw simulator throughput benchmarks
// ---------------------------------------------------------------------

func benchmarkSimThroughput(b *testing.B, mk func() *Sim, benchmark string) {
	prof, err := workload.ByName(benchmark)
	if err != nil {
		b.Fatal(err)
	}
	accs := prof.Trace(200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := mk()
		for _, a := range accs {
			sim.System().Do(a)
		}
	}
	b.ReportMetric(float64(len(accs)*b.N)/b.Elapsed().Seconds(), "accesses/s")
}

func mustNewSim(opts ...Option) *Sim {
	s, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

func BenchmarkBaselineCache(b *testing.B) {
	benchmarkSimThroughput(b, func() *Sim { return mustNewSim(WithTraditional(1<<20, 8)) }, "mcf")
}

func BenchmarkDistillCache(b *testing.B) {
	benchmarkSimThroughput(b, func() *Sim { return mustNewSim(WithDistill(DefaultDistillConfig())) }, "mcf")
}

func BenchmarkSFPCache(b *testing.B) {
	benchmarkSimThroughput(b, func() *Sim { return mustNewSim(WithSFP(0)) }, "mcf")
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	prof, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		st := prof.Stream()
		for j := 0; j < 100_000; j++ {
			if _, ok := st.Next(); !ok {
				b.Fatal("stream dried up")
			}
		}
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// ---------------------------------------------------------------------
// Ablations (design choices DESIGN.md calls out)
// ---------------------------------------------------------------------

// BenchmarkAblationWOCWays sweeps the LOC/WOC split (the paper fixes 2
// of 8 ways; Figure 11 also uses 3).
func BenchmarkAblationWOCWays(b *testing.B) {
	prof, err := workload.ByName("health")
	if err != nil {
		b.Fatal(err)
	}
	for _, woc := range []int{1, 2, 3, 4} {
		b.Run(map[int]string{1: "woc1", 2: "woc2", 3: "woc3", 4: "woc4"}[woc], func(b *testing.B) {
			var mpki float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultDistillConfig()
				cfg.WOCWays = woc
				sim := mustNewSim(WithDistill(cfg))
				res := sim.RunStream("health", prof.Stream(), 250_000)
				mpki = res.MPKI
			}
			b.ReportMetric(mpki, "MPKI")
		})
	}
}

// BenchmarkAblationMedianThreshold compares MT filtering on/off.
func BenchmarkAblationMedianThreshold(b *testing.B) {
	prof, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	for _, mt := range []bool{false, true} {
		name := "mt-off"
		if mt {
			name = "mt-on"
		}
		b.Run(name, func(b *testing.B) {
			var mpki float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultDistillConfig()
				cfg.MedianThreshold = mt
				cfg.Reverter = false
				sim := mustNewSim(WithDistill(cfg))
				res := sim.RunStream("mcf", prof.Stream(), 250_000)
				mpki = res.MPKI
			}
			b.ReportMetric(mpki, "MPKI")
		})
	}
}

// BenchmarkAblationLeaderSets sweeps the reverter's sampling density.
func BenchmarkAblationLeaderSets(b *testing.B) {
	prof, err := workload.ByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	for _, leaders := range []int{8, 32, 128} {
		b.Run(map[int]string{8: "leaders8", 32: "leaders32", 128: "leaders128"}[leaders], func(b *testing.B) {
			var mpki float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultDistillConfig()
				sc := samplerConfigFor(cfg, leaders)
				cfg.SamplerConfig = &sc
				sim := mustNewSim(WithDistill(cfg))
				res := sim.RunStream("swim", prof.Stream(), 250_000)
				mpki = res.MPKI
			}
			b.ReportMetric(mpki, "MPKI")
		})
	}
}

// BenchmarkAblationTraceCodec measures trace serialization speed.
func BenchmarkAblationTraceCodec(b *testing.B) {
	prof, err := workload.ByName("art")
	if err != nil {
		b.Fatal(err)
	}
	accs := prof.Trace(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf discardCounter
		if err := trace.Write(&buf, accs); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf))
	}
}

// samplerConfigFor builds a reverter sampler config with the given
// leader-set count for the default distill geometry.
func samplerConfigFor(cfg DistillConfig, leaders int) sampler.Config {
	sc := sampler.DefaultConfig(cfg.Sets())
	sc.LeaderSets = leaders
	sc.LowWatermark = 112
	sc.HighWatermark = 144
	return sc
}

// discardCounter is an io.Writer that counts bytes.
type discardCounter int64

func (d *discardCounter) Write(p []byte) (int, error) {
	*d += discardCounter(len(p))
	return len(p), nil
}

// BenchmarkAblationWOCReplacement checks the paper's footnote 4: random
// WOC replacement performs similarly to a variable-size LRU.
func BenchmarkAblationWOCReplacement(b *testing.B) {
	prof, err := workload.ByName("health")
	if err != nil {
		b.Fatal(err)
	}
	for _, lru := range []bool{false, true} {
		name := "random"
		if lru {
			name = "lru"
		}
		b.Run(name, func(b *testing.B) {
			var mpki float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultDistillConfig()
				cfg.WOCLRU = lru
				sim := mustNewSim(WithDistill(cfg))
				res := sim.RunStream("health", prof.Stream(), 250_000)
				mpki = res.MPKI
			}
			b.ReportMetric(mpki, "MPKI")
		})
	}
}

// BenchmarkAblationStaticThreshold sweeps the fixed distillation
// threshold K against the adaptive median (Section 5.4's discussion of
// low vs high K).
func BenchmarkAblationStaticThreshold(b *testing.B) {
	prof, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	cases := map[string]func(*DistillConfig){
		"k1":     func(c *DistillConfig) { c.MedianThreshold = false; c.StaticThreshold = 1 },
		"k2":     func(c *DistillConfig) { c.MedianThreshold = false; c.StaticThreshold = 2 },
		"k4":     func(c *DistillConfig) { c.MedianThreshold = false; c.StaticThreshold = 4 },
		"k8":     func(c *DistillConfig) { c.MedianThreshold = false; c.StaticThreshold = 8 },
		"median": func(c *DistillConfig) { c.MedianThreshold = true },
	}
	for _, name := range []string{"k1", "k2", "k4", "k8", "median"} {
		b.Run(name, func(b *testing.B) {
			var mpki float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultDistillConfig()
				cfg.Reverter = false
				cases[name](&cfg)
				sim := mustNewSim(WithDistill(cfg))
				res := sim.RunStream("mcf", prof.Stream(), 250_000)
				mpki = res.MPKI
			}
			b.ReportMetric(mpki, "MPKI")
		})
	}
}

// BenchmarkAblationFootprintNoise models wrong-path pollution (paper
// footnote 8): noisy footprints dilute distillation.
func BenchmarkAblationFootprintNoise(b *testing.B) {
	prof, err := workload.ByName("health")
	if err != nil {
		b.Fatal(err)
	}
	for _, tt := range []struct {
		name  string
		noise float64
	}{{"clean", 0}, {"noise10", 0.1}, {"noise50", 0.5}} {
		b.Run(tt.name, func(b *testing.B) {
			var mpki float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultDistillConfig()
				cfg.FootprintNoise = tt.noise
				sim := mustNewSim(WithDistill(cfg))
				res := sim.RunStream("health", prof.Stream(), 250_000)
				mpki = res.MPKI
			}
			b.ReportMetric(mpki, "MPKI")
		})
	}
}

// BenchmarkAblationVictimCache contrasts true distillation against a
// plain victim cache with the same data budget: forcing every distilled
// line to occupy a full 8-slot group turns the WOC into a 2-way
// full-line victim buffer, isolating how much of LDIS's win comes from
// *filtering* rather than from the extra associativity.
func BenchmarkAblationVictimCache(b *testing.B) {
	prof, err := workload.ByName("health")
	if err != nil {
		b.Fatal(err)
	}
	for _, victim := range []bool{false, true} {
		name := "distill"
		if victim {
			name = "victim"
		}
		b.Run(name, func(b *testing.B) {
			var mpki float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultDistillConfig()
				cfg.MedianThreshold = !victim
				if victim {
					cfg.Slots = func(_ mem.LineAddr, _ mem.Footprint) int { return 8 }
				}
				sim := mustNewSim(WithDistill(cfg))
				res := sim.RunStream("health", prof.Stream(), 250_000)
				mpki = res.MPKI
			}
			b.ReportMetric(mpki, "MPKI")
		})
	}
}

// BenchmarkAblationPrefetchCompose measures next-line prefetching over
// the baseline and the distill cache (the paper's Section 9 notes the
// techniques are orthogonal).
func BenchmarkAblationPrefetchCompose(b *testing.B) {
	prof, err := workload.ByName("wupwise")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, mk func() hierarchy.L2) {
		var mpki float64
		for i := 0; i < b.N; i++ {
			sys := hierarchy.NewSystem(mk())
			st := prof.Stream()
			sys.Run(st, 200_000)
			mpki = float64(sys.L2.Misses()) / float64(sys.Instructions) * 1000
		}
		b.ReportMetric(mpki, "MPKI")
	}
	b.Run("baseline", func(b *testing.B) {
		run(b, func() hierarchy.L2 {
			return hierarchy.NewTradL2(cache.New(cache.Config{Name: "b", SizeBytes: 1 << 20, Ways: 8}))
		})
	})
	b.Run("baseline-pf2", func(b *testing.B) {
		run(b, func() hierarchy.L2 {
			inner := hierarchy.NewTradL2(cache.New(cache.Config{Name: "b", SizeBytes: 1 << 20, Ways: 8}))
			return prefetch.Wrap(inner, prefetch.Config{Degree: 2})
		})
	})
	b.Run("distill-pf2", func(b *testing.B) {
		run(b, func() hierarchy.L2 {
			inner := hierarchy.NewDistillL2(distill.New(DefaultDistillConfig()))
			return prefetch.Wrap(inner, prefetch.Config{Degree: 2})
		})
	})
}

// BenchmarkAblationDRAMRowBuffer contrasts the paper's closed-page
// memory with an open-page row-buffer variant on a streaming access
// pattern (sequential lines revisit rows; row hits cost 150 cycles
// instead of 400).
func BenchmarkAblationDRAMRowBuffer(b *testing.B) {
	for _, tt := range []struct {
		name string
		cfg  dram.Config
	}{
		{"closed-page", dram.DefaultConfig()},
		{"open-page", dram.OpenPageConfig(150)},
	} {
		b.Run(tt.name, func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				m := dram.New(tt.cfg)
				now, total := 0.0, 0.0
				const n = 100_000
				for j := 0; j < n; j++ {
					done := m.Access(now, mem.LineAddr(j))
					total += done - now
					now += 20
				}
				avg = total / n
			}
			b.ReportMetric(avg, "avg-latency-cycles")
		})
	}
}
