package ldis_test

import (
	"testing"

	"ldis"
)

// newBuilders is the full organization matrix expressed through the
// v1 functional-options API — the five base organizations plus the
// three related-work modifiers on their host organizations.
func newBuilders() map[string]func(bench string) (*ldis.Sim, error) {
	return map[string]func(bench string) (*ldis.Sim, error){
		"baseline": func(string) (*ldis.Sim, error) { return ldis.New(ldis.WithTraditional(1<<20, 8)) },
		"distill": func(string) (*ldis.Sim, error) {
			return ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()))
		},
		"cmpr": func(b string) (*ldis.Sim, error) { return ldis.New(ldis.WithCompression(b)) },
		"fac": func(b string) (*ldis.Sim, error) {
			return ldis.New(ldis.WithFAC(ldis.DefaultDistillConfig(), b))
		},
		"sfp": func(string) (*ldis.Sim, error) { return ldis.New(ldis.WithSFP(0)) },
		"distill+touche": func(string) (*ldis.Sim, error) {
			return ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()),
				ldis.WithToucheTags(ldis.ToucheTagsConfig{}))
		},
		"distill+copyback": func(string) (*ldis.Sim, error) {
			return ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()),
				ldis.WithCleanCopyBack(ldis.CopyBackConfig{}))
		},
		"trad+waymemo": func(string) (*ldis.Sim, error) {
			return ldis.New(ldis.WithTraditional(1<<20, 8),
				ldis.WithWayMemo(ldis.WayMemoConfig{}))
		},
	}
}

// TestMatrixAllBenchmarksAllOrganizations is the breadth smoke test:
// every registered benchmark runs on every cache organization the v1
// API can build, without panicking, with sane accounting (hits+misses
// == L2 accesses, MPKI finite) and, for distill caches, intact
// structural invariants.
func TestMatrixAllBenchmarksAllOrganizations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full matrix")
	}
	const n = 25_000
	for _, bench := range ldis.Benchmarks() {
		for kind, build := range newBuilders() {
			sim, err := build(bench)
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, kind, err)
			}
			res, err := sim.RunWorkload(bench, n)
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, kind, err)
			}
			if res.Accesses != n {
				t.Errorf("%s/%s: ran %d accesses", bench, kind, res.Accesses)
			}
			if res.Instructions == 0 {
				t.Errorf("%s/%s: no instructions retired", bench, kind)
			}
			if res.MPKI < 0 || res.MPKI > 1000 {
				t.Errorf("%s/%s: implausible MPKI %v", bench, kind, res.MPKI)
			}
			if res.L2Misses > res.L2Accesses {
				t.Errorf("%s/%s: misses %d exceed accesses %d", bench, kind, res.L2Misses, res.L2Accesses)
			}
			if ds := sim.DistillStats(); ds != nil {
				if ds.Hits()+ds.Misses() != ds.Accesses {
					t.Errorf("%s/%s: distill accounting broken: %+v", bench, kind, ds)
				}
			}
		}
	}
}

// TestNewRejectsBadOptionSets pins the misuse diagnostics: no
// organization, more than one, and modifiers on the wrong host.
func TestNewRejectsBadOptionSets(t *testing.T) {
	if _, err := ldis.New(); err == nil {
		t.Error("New() without an organization option succeeded")
	}
	if _, err := ldis.New(ldis.WithObserver(ldis.NewObserver())); err == nil {
		t.Error("New(WithObserver) alone succeeded")
	}
	_, err := ldis.New(ldis.WithTraditional(1<<20, 8), ldis.WithSFP(0))
	if err == nil {
		t.Fatal("conflicting organization options accepted")
	}
	for _, want := range []string{"WithTraditional", "WithSFP"} {
		if !containsStr(err.Error(), want) {
			t.Errorf("conflict error %q does not name %s", err, want)
		}
	}
}

// TestNewRejectsIncompatibleModifiers pins the modifier/host matrix:
// Touché and copy-back require a distill-family organization, the way
// memo a traditional one, and the valid pairings build.
func TestNewRejectsIncompatibleModifiers(t *testing.T) {
	bad := []struct {
		name string
		opts []ldis.Option
		want string
	}{
		{"touche-on-traditional",
			[]ldis.Option{ldis.WithTraditional(1<<20, 8), ldis.WithToucheTags(ldis.ToucheTagsConfig{})},
			"WithToucheTags"},
		{"copyback-on-sfp",
			[]ldis.Option{ldis.WithSFP(0), ldis.WithCleanCopyBack(ldis.CopyBackConfig{})},
			"WithCleanCopyBack"},
		{"waymemo-on-distill",
			[]ldis.Option{ldis.WithDistill(ldis.DefaultDistillConfig()), ldis.WithWayMemo(ldis.WayMemoConfig{})},
			"WithWayMemo"},
		{"waymemo-on-compression",
			[]ldis.Option{ldis.WithCompression("mcf"), ldis.WithWayMemo(ldis.WayMemoConfig{})},
			"WithWayMemo"},
	}
	for _, tc := range bad {
		_, err := ldis.New(tc.opts...)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !containsStr(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
	}
	good := [][]ldis.Option{
		{ldis.WithDistill(ldis.DefaultDistillConfig()),
			ldis.WithToucheTags(ldis.ToucheTagsConfig{}),
			ldis.WithCleanCopyBack(ldis.CopyBackConfig{})},
		{ldis.WithFAC(ldis.DefaultDistillConfig(), "mcf"),
			ldis.WithToucheTags(ldis.ToucheTagsConfig{})},
		{ldis.WithTraditional(1<<20, 8), ldis.WithWayMemo(ldis.WayMemoConfig{EntriesPerSet: 8})},
		{ldis.WithTraditional(1<<20, 8), ldis.WithTouchéTags(ldis.ToucheTagsConfig{})},
	}
	// The last combination is invalid by host; it documents that the
	// accented alias routes through the same check.
	for i, opts := range good[:3] {
		if _, err := ldis.New(opts...); err != nil {
			t.Errorf("valid combination %d rejected: %v", i, err)
		}
	}
	if _, err := ldis.New(good[3]...); err == nil {
		t.Error("accented alias bypassed the host check")
	}
	// Invalid modifier configs surface through Validate.
	_, err := ldis.New(ldis.WithTraditional(1<<20, 8),
		ldis.WithWayMemo(ldis.WayMemoConfig{EntriesPerSet: 3}))
	if err == nil {
		t.Error("non-power-of-two memo geometry accepted")
	}
	_, err = ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()),
		ldis.WithToucheTags(ldis.ToucheTagsConfig{SuperblockLines: 3}))
	if err == nil {
		t.Error("non-power-of-two superblock accepted")
	}
}

// TestWithObserverRecordsMetrics: a distill run with an observer must
// populate the instrumented counters, and the same run without one
// must behave identically (the zero-overhead contract, result half).
func TestWithObserverRecordsMetrics(t *testing.T) {
	reg := ldis.NewObserver()
	obsSim, err := ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()), ldis.WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	plainSim, err := ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()))
	if err != nil {
		t.Fatal(err)
	}
	obsRes, err := obsSim.RunWorkload("mcf", 50_000)
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := plainSim.RunWorkload("mcf", 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if obsRes != plainRes {
		t.Errorf("observer changed results:\n with %+v\n without %+v", obsRes, plainRes)
	}
	snap := reg.Snapshot()
	byName := map[string]uint64{}
	for _, m := range snap {
		byName[m.Name] = m.Count
	}
	if byName["distill_lines_distilled"] == 0 {
		t.Errorf("distill_lines_distilled not recorded; snapshot %+v", snap)
	}
	if byName["cache_evictions"] == 0 && byName["distill_woc_evictions"] == 0 {
		t.Errorf("no eviction counters recorded; snapshot %+v", snap)
	}
}

// TestModifierSimsRunAndCount: each modifier must leave its
// fingerprints in the counters an Observer collects — Touché lookups
// happen, copy-backs occur on a reuse-heavy benchmark, the way memo
// skips probes — while keeping results well-formed.
func TestModifierSimsRunAndCount(t *testing.T) {
	reg := ldis.NewObserver()
	sim, err := ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()),
		ldis.WithCleanCopyBack(ldis.CopyBackConfig{}),
		ldis.WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunWorkload("mcf", 200_000); err != nil {
		t.Fatal(err)
	}
	ds := sim.DistillStats()
	if ds == nil {
		t.Fatal("no distill stats from a distill sim")
	}
	if ds.CopyBacks+ds.CopyBackFar+ds.CopyBackCold == 0 {
		t.Error("copy-back predictor never consulted on mcf")
	}

	sim, err = ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()),
		ldis.WithToucheTags(ldis.ToucheTagsConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunWorkload("mcf", 200_000); err != nil {
		t.Fatal(err)
	}
	if ds := sim.DistillStats(); ds.Touche.Lookups == 0 {
		t.Error("Touché tags never consulted on mcf")
	}

	memoReg := ldis.NewObserver()
	sim, err = ldis.New(ldis.WithTraditional(1<<20, 8),
		ldis.WithWayMemo(ldis.WayMemoConfig{}), ldis.WithObserver(memoReg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunWorkload("mcf", 200_000); err != nil {
		t.Fatal(err)
	}
	hits := uint64(0)
	for _, m := range memoReg.Snapshot() {
		if m.Name == "cache_waymemo_hits" {
			hits = m.Count
		}
	}
	if hits == 0 {
		t.Error("way memo never hit on mcf")
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
