package ldis_test

import (
	"testing"

	"ldis"
)

// TestNewMatchesDeprecatedConstructors proves the functional-options
// API is a pure refactor: for every registered benchmark and every
// cache organization, the Result from ldis.New is byte-identical to
// the one from the deprecated constructor it replaces.
func TestNewMatchesDeprecatedConstructors(t *testing.T) {
	const accesses = 20_000
	type pair struct {
		name string
		old  func(bench string) (*ldis.Sim, error)
		new  func(bench string) (*ldis.Sim, error)
	}
	pairs := []pair{
		{
			name: "baseline",
			old:  func(string) (*ldis.Sim, error) { return ldis.NewBaselineSim(), nil },
			new:  func(string) (*ldis.Sim, error) { return ldis.New(ldis.WithTraditional(1<<20, 8)) },
		},
		{
			name: "traditional-2MB",
			old:  func(string) (*ldis.Sim, error) { return ldis.NewTraditionalSim(2<<20, 16) },
			new:  func(string) (*ldis.Sim, error) { return ldis.New(ldis.WithTraditional(2<<20, 16)) },
		},
		{
			name: "distill",
			old: func(string) (*ldis.Sim, error) {
				return ldis.NewDistillSim(ldis.DefaultDistillConfig()), nil
			},
			new: func(string) (*ldis.Sim, error) {
				return ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()))
			},
		},
		{
			name: "compressed",
			old:  func(b string) (*ldis.Sim, error) { return ldis.NewCompressedSim(b) },
			new:  func(b string) (*ldis.Sim, error) { return ldis.New(ldis.WithCompression(b)) },
		},
		{
			name: "fac",
			old: func(b string) (*ldis.Sim, error) {
				return ldis.NewFACSim(ldis.DefaultDistillConfig(), b)
			},
			new: func(b string) (*ldis.Sim, error) {
				return ldis.New(ldis.WithFAC(ldis.DefaultDistillConfig(), b))
			},
		},
		{
			name: "sfp",
			old:  func(string) (*ldis.Sim, error) { return ldis.NewSFPSim(0) },
			new:  func(string) (*ldis.Sim, error) { return ldis.New(ldis.WithSFP(0)) },
		},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			for _, bench := range ldis.Benchmarks() {
				oldSim, err := p.old(bench)
				if err != nil {
					t.Fatalf("%s/%s old: %v", p.name, bench, err)
				}
				newSim, err := p.new(bench)
				if err != nil {
					t.Fatalf("%s/%s new: %v", p.name, bench, err)
				}
				oldRes, err := oldSim.RunWorkload(bench, accesses)
				if err != nil {
					t.Fatal(err)
				}
				newRes, err := newSim.RunWorkload(bench, accesses)
				if err != nil {
					t.Fatal(err)
				}
				if oldRes != newRes {
					t.Errorf("%s/%s: results diverge:\n old %+v\n new %+v", p.name, bench, oldRes, newRes)
				}
			}
		})
	}
}

// TestNewRejectsBadOptionSets pins the two misuse diagnostics: no
// organization, and more than one.
func TestNewRejectsBadOptionSets(t *testing.T) {
	if _, err := ldis.New(); err == nil {
		t.Error("New() without an organization option succeeded")
	}
	if _, err := ldis.New(ldis.WithObserver(ldis.NewObserver())); err == nil {
		t.Error("New(WithObserver) alone succeeded")
	}
	_, err := ldis.New(ldis.WithTraditional(1<<20, 8), ldis.WithSFP(0))
	if err == nil {
		t.Fatal("conflicting organization options accepted")
	}
	for _, want := range []string{"WithTraditional", "WithSFP"} {
		if !containsStr(err.Error(), want) {
			t.Errorf("conflict error %q does not name %s", err, want)
		}
	}
}

// TestWithObserverRecordsMetrics: a distill run with an observer must
// populate the instrumented counters, and the same run without one
// must behave identically (the zero-overhead contract, result half).
func TestWithObserverRecordsMetrics(t *testing.T) {
	reg := ldis.NewObserver()
	obsSim, err := ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()), ldis.WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	plainSim, err := ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()))
	if err != nil {
		t.Fatal(err)
	}
	obsRes, err := obsSim.RunWorkload("mcf", 50_000)
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := plainSim.RunWorkload("mcf", 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if obsRes != plainRes {
		t.Errorf("observer changed results:\n with %+v\n without %+v", obsRes, plainRes)
	}
	snap := reg.Snapshot()
	byName := map[string]uint64{}
	for _, m := range snap {
		byName[m.Name] = m.Count
	}
	if byName["distill_lines_distilled"] == 0 {
		t.Errorf("distill_lines_distilled not recorded; snapshot %+v", snap)
	}
	if byName["cache_evictions"] == 0 && byName["distill_woc_evictions"] == 0 {
		t.Errorf("no eviction counters recorded; snapshot %+v", snap)
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
