package ldis

import (
	"math"
	"testing"

	"ldis/internal/exp"
	"ldis/internal/workload"
)

// These integration tests assert the cross-cutting properties the paper
// claims, on reduced access budgets. They intentionally use loose
// tolerances: the goal is to catch regressions that break result
// *shapes*, not to pin exact numbers.

// TestRobustnessLDISNeverMuchWorse reproduces the paper's key robustness
// claim: LDIS-MT-RC "never increases misses by more than 2%". With our
// short traces we allow 6% to absorb reverter convergence transients.
func TestRobustnessLDISNeverMuchWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	// Measured through the experiment harness (warmup window plus the
	// short-trace reverter band documented in internal/exp).
	o := exp.Options{Accesses: 1_200_000, WarmupFrac: 0.5,
		Benchmarks: []string{"swim", "bzip2", "parser", "galgel", "wupwise"}}
	rows, err := exp.Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RC < -6 {
			t.Errorf("%s: LDIS-MT-RC increases MPKI by %.1f%% (baseline %.2f)",
				r.Benchmark, -r.RC, r.BaselineMPKI)
		}
	}
}

// TestHeadlineWinners checks the paper's Figure 6 winner set: art,
// twolf, ammp, sixtrack, and health all gain at least 20% under
// LDIS-MT-RC, measured with a warmup window as the experiments do.
func TestHeadlineWinners(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	o := exp.Options{Accesses: 1_600_000, WarmupFrac: 0.5,
		Benchmarks: []string{"art", "twolf", "ammp", "sixtrack", "health"}}
	rows, err := exp.Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RC < 20 {
			t.Errorf("%s: MPKI reduction %.1f%%, want >= 20%% (baseline %.2f MPKI)",
				r.Benchmark, r.RC, r.BaselineMPKI)
		}
	}
}

// TestDeterminism: identical runs produce identical counters.
func TestDeterminism(t *testing.T) {
	run := func() Result {
		res, err := mustNewSim(WithDistill(DefaultDistillConfig())).RunWorkload("twolf", 120_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic results:\n%+v\n%+v", a, b)
	}
}

// TestWorkloadCalibration guards the per-benchmark words-used
// calibration against the paper's Table 6 values at 1MB.
func TestWorkloadCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	// galgel's working set barely exceeds 1MB, so evictions (the
	// words-used sample) need longer traces; apsi needs longer still
	// and is covered by the full-scale ldisexp runs instead.
	o := exp.Options{Accesses: 1_500_000, WarmupFrac: 0.25,
		Benchmarks: []string{"art", "mcf", "galgel", "health"}}
	rows, err := exp.Fig1(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		prof, _ := workload.ByName(r.Benchmark)
		want := prof.PaperWordsUsed
		if want == 0 {
			continue
		}
		if math.Abs(r.Mean-want)/want > 0.35 {
			t.Errorf("%s: words used %.2f, paper %.2f (>35%% off)", r.Benchmark, r.Mean, want)
		}
	}
}

// TestMPKIOrderingMatchesPaper: the extreme benchmarks keep their
// relative order (mcf > health > art >> twolf > sixtrack).
func TestMPKIOrderingMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	const n = 500_000
	mpki := map[string]float64{}
	for _, name := range []string{"mcf", "health", "art", "twolf", "sixtrack"} {
		res, err := mustNewSim(WithTraditional(1<<20, 8)).RunWorkload(name, n)
		if err != nil {
			t.Fatal(err)
		}
		mpki[name] = res.MPKI
	}
	order := []string{"mcf", "health", "art", "twolf", "sixtrack"}
	for i := 1; i < len(order); i++ {
		if mpki[order[i-1]] <= mpki[order[i]] {
			t.Errorf("MPKI ordering violated: %s (%.2f) <= %s (%.2f)",
				order[i-1], mpki[order[i-1]], order[i], mpki[order[i]])
		}
	}
}

// TestFACComposesWithLDIS: on a compressible low-spatial-locality
// workload, FAC should do at least as well as plain LDIS with the same
// way split (the paper's positive-interaction claim).
func TestFACComposesWithLDIS(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	const n = 500_000
	cfg := DefaultDistillConfig()
	cfg.WOCWays = 3
	ld, err := mustNewSim(WithDistill(cfg)).RunWorkload("health", n)
	if err != nil {
		t.Fatal(err)
	}
	fac, err := New(WithFAC(cfg, "health"))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fac.RunWorkload("health", n)
	if err != nil {
		t.Fatal(err)
	}
	if fr.MPKI > ld.MPKI*1.05 {
		t.Errorf("FAC MPKI %.2f worse than LDIS %.2f on compressible workload", fr.MPKI, ld.MPKI)
	}
}

// TestSFPBelowLDIS: the Figure 13 relationship on a representative
// benchmark — SFP helps mcf far less than LDIS does.
func TestSFPBelowLDIS(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	const n = 500_000
	base, err := mustNewSim(WithTraditional(1<<20, 8)).RunWorkload("mcf", n)
	if err != nil {
		t.Fatal(err)
	}
	sfpSim, err := New(WithSFP(16 << 10))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sfpSim.RunWorkload("mcf", n)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := mustNewSim(WithDistill(DefaultDistillConfig())).RunWorkload("mcf", n)
	if err != nil {
		t.Fatal(err)
	}
	redSFP := base.MPKI - sp.MPKI
	redLDIS := base.MPKI - ld.MPKI
	if redLDIS <= redSFP {
		t.Errorf("LDIS reduction (%.2f MPKI) not above SFP (%.2f MPKI)", redLDIS, redSFP)
	}
}
