// Pointerchase: the paper's motivating scenario. Linked-data workloads
// (mcf, olden/health) touch only one or two 8-byte words per 64-byte
// line, so most of the cache stores bytes that are never read. This
// example sweeps the WOC size (0 = traditional) on the health benchmark
// and shows how filtering unused words converts dead space into hits —
// and how the capacity compares against simply buying bigger caches.
package main

import (
	"fmt"

	"ldis"
)

func main() {
	const benchmark = "health"
	const accesses = 1_000_000

	fmt.Printf("benchmark %s: pointer chasing, ~2 of 8 words used per line\n\n", benchmark)

	base, err := mustNew(ldis.WithTraditional(1<<20, 8)).RunWorkload(benchmark, accesses)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-28s MPKI %6.2f\n", "traditional 1MB 8-way", base.MPKI)

	for _, woc := range []int{1, 2, 3} {
		cfg := ldis.DefaultDistillConfig()
		cfg.WOCWays = woc
		res, err := mustNew(ldis.WithDistill(cfg)).RunWorkload(benchmark, accesses)
		if err != nil {
			panic(err)
		}
		fmt.Printf("distill %d LOC + %d WOC ways    MPKI %6.2f  (%.1f%% fewer misses)\n",
			8-woc, woc, res.MPKI, 100*(base.MPKI-res.MPKI)/base.MPKI)
	}

	// Against bigger traditional caches (paper Figure 8: for health the
	// distill cache beats even doubling the capacity).
	for _, mb := range []int{2, 4} {
		res, err := mustNew(ldis.WithTraditional(mb<<20, 8)).RunWorkload(benchmark, accesses)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-28s MPKI %6.2f  (%.1f%% fewer misses)\n",
			fmt.Sprintf("traditional %dMB 8-way", mb), res.MPKI,
			100*(base.MPKI-res.MPKI)/base.MPKI)
	}
}

// mustNew builds a simulator from a known-good option set.
func mustNew(opts ...ldis.Option) *ldis.Sim {
	sim, err := ldis.New(opts...)
	if err != nil {
		panic(err)
	}
	return sim
}
