// Reverter: the paper's adversarial case (Section 7.1). swim first
// touches one word of a line and returns for the other seven a long
// reuse-distance later — exactly the words eager distillation throws
// away, so LDIS-Base *increases* misses via hole-misses. The reverter
// circuit (Section 5.5) detects this with dynamic set sampling and
// turns LDIS off, restoring baseline behaviour.
package main

import (
	"fmt"

	"ldis"
)

func main() {
	const benchmark = "swim"
	const accesses = 2_000_000

	base, err := mustNew(ldis.WithTraditional(1<<20, 8)).RunWorkload(benchmark, accesses)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-34s MPKI %6.2f\n", "traditional 1MB 8-way", base.MPKI)

	run := func(label string, mt, reverter bool) {
		cfg := ldis.DefaultDistillConfig()
		cfg.MedianThreshold = mt
		cfg.Reverter = reverter
		sim := mustNew(ldis.WithDistill(cfg))
		res, err := sim.RunWorkload(benchmark, accesses)
		if err != nil {
			panic(err)
		}
		delta := 100 * (base.MPKI - res.MPKI) / base.MPKI
		fmt.Printf("%-34s MPKI %6.2f  (%+.1f%%), hole-misses %d\n",
			label, res.MPKI, delta, res.HoleMisses)
		if ds := sim.DistillStats(); reverter && ds != nil {
			fmt.Printf("%-34s mode switches: %d (followers fell back to the traditional organization)\n",
				"", ds.ModeSwitches)
		}
	}

	run("LDIS-Base (eager distillation)", false, false)
	run("LDIS-MT (median threshold)", true, false)
	run("LDIS-MT-RC (with reverter)", true, true)

	fmt.Println("\nThe reverter bounds the damage: the paper reports LDIS-MT-RC")
	fmt.Println("never increases misses by more than 2% on any benchmark.")
}

// mustNew builds a simulator from a known-good option set.
func mustNew(opts ...ldis.Option) *ldis.Sim {
	sim, err := ldis.New(opts...)
	if err != nil {
		panic(err)
	}
	return sim
}
