// Sharedcache: two programs sharing one L2, a scenario the paper's
// single-core study does not cover but the library supports directly —
// trace.Interleave round-robins two benchmark streams into a single
// hierarchy. A low-spatial-locality pointer chaser (health) running
// beside a streaming FP code (wupwise) shows that distillation's
// capacity recovery survives (and helps under) cache sharing.
package main

import (
	"fmt"

	"ldis"
	"ldis/internal/trace"
	"ldis/internal/workload"
)

func main() {
	const accesses = 1_000_000

	mix := func() trace.Stream {
		a, err := workload.ByName("health")
		if err != nil {
			panic(err)
		}
		b, err := workload.ByName("wupwise")
		if err != nil {
			panic(err)
		}
		return trace.NewInterleave(a.Stream(), b.Stream())
	}

	base := mustNew(ldis.WithTraditional(1<<20, 8)).RunStream("health+wupwise", mix(), accesses)
	dist := mustNew(ldis.WithDistill(ldis.DefaultDistillConfig())).RunStream("health+wupwise", mix(), accesses)

	fmt.Println("shared 1MB L2, interleaved health + wupwise")
	fmt.Printf("  baseline: %s\n", base)
	fmt.Printf("  distill:  %s\n", dist)
	fmt.Printf("\nMPKI %.2f -> %.2f (%.1f%% fewer misses under sharing)\n",
		base.MPKI, dist.MPKI, 100*(base.MPKI-dist.MPKI)/base.MPKI)
	fmt.Println("\nwupwise streams full lines (nothing to distill, nothing lost);")
	fmt.Println("health's 2-word lines pack 4-8x denser in the WOC, so the")
	fmt.Println("chaser keeps its working set despite the streaming neighbour.")
}

// mustNew builds a simulator from a known-good option set.
func mustNew(opts ...ldis.Option) *ldis.Sim {
	sim, err := ldis.New(opts...)
	if err != nil {
		panic(err)
	}
	return sim
}
