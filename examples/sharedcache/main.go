// Sharedcache: two programs sharing one L2 under an online partition
// controller (internal/partition). The controller samples each
// tenant's reference stream through SHARDS miss-ratio-curve engines
// and, every epoch, re-divides the 16 ways by marginal utility; the
// cache enforces the quotas in victim selection. Running the same mix
// under all three policies — static equal split, line-grain UCP, and
// the word-grain LDIS-aware allocator on a distilling cache — shows
// where online curves beat a fixed split, and where distillation's
// word-grain view changes the decision again.
package main

import (
	"fmt"

	"ldis/internal/cache"
	"ldis/internal/distill"
	"ldis/internal/partition"
	"ldis/internal/trace"
	"ldis/internal/workload"
)

const (
	accesses  = 1_000_000
	sizeBytes = 1 << 20
	ways      = 16
	wayBytes  = sizeBytes / ways
	wocWays   = 4
	epoch     = 20_000
)

func main() {
	tenants := []string{"health", "wupwise"}

	fmt.Printf("shared 1MB 16-way L2: %s + %s, %d accesses, %d-access epochs\n\n",
		tenants[0], tenants[1], accesses, epoch)
	fmt.Println("policy  agg miss  final ways  rebalances")
	fmt.Println("------------------------------------------")
	for _, policyName := range partition.PolicyNames {
		miss, alloc, rebal := run(tenants, policyName)
		fmt.Printf("%-7s %.4f    %-11s %d\n", policyName, miss, alloc, rebal)
	}
	fmt.Println("\nhealth chases pointers through 2-word lines; wupwise streams")
	fmt.Println("full ones. UCP moves ways to whoever's miss curve pays for")
	fmt.Println("them; the ldis policy prices health at its distilled word")
	fmt.Println("footprint, so the same demand frees ways for the streamer.")
}

// run drives the tenant mix under one policy and returns the aggregate
// miss ratio, the final allocation, and the rebalance count.
func run(tenants []string, policyName string) (missRatio float64, alloc string, rebalances int) {
	n := len(tenants)
	streams := make([]trace.Stream, n)
	var seed uint64 = 0x5eed
	for i, name := range tenants {
		prof, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		streams[i] = prof.Stream()
		seed = seed*31 ^ prof.Seed
	}
	policy, _ := partition.ByName(policyName)
	ctrl, err := partition.NewController(partition.Config{
		Tenants:       n,
		TotalWays:     ways,
		WayBytes:      wayBytes,
		EpochAccesses: epoch,
		Policy:        policy,
		SampleRate:    0.5,
		Seed:          seed,
		AccessBudget:  accesses,
	})
	if err != nil {
		panic(err)
	}

	// The word-grain policy partitions the distilling organization;
	// the line-grain policies partition a conventional cache.
	var (
		conv     *cache.Cache
		dist     *distill.Cache
		locQuota = make([]int, n)
		wocMask  = make([]uint64, n)
	)
	if policy.Grain() == partition.GrainWord {
		dist = distill.New(distill.Config{
			Name: "ldis", SizeBytes: sizeBytes, Ways: ways, WOCWays: wocWays, Seed: seed,
		})
	} else {
		conv = cache.New(cache.Config{Name: policyName, SizeBytes: sizeBytes, Ways: ways})
	}
	apply := func() {
		if conv != nil {
			conv.SetPartition(ctrl.Alloc())
			return
		}
		partition.ScaleAlloc(ctrl.Alloc(), ways-wocWays, 1, locQuota)
		partition.WayMasks(ctrl.Alloc(), wocWays, wocMask)
		dist.SetPartition(locQuota, wocMask)
	}
	apply()

	in := trace.NewInterleave(streams...)
	var refs, misses uint64
	for i := 0; i < accesses; i++ {
		a, ok := in.Next()
		if !ok {
			break
		}
		tenant := i % n // profiles are infinite; round-robin never skips
		var miss bool
		if conv != nil {
			miss = !conv.AccessInstallTenant(a.Line(), a.Word(), a.IsWrite(), tenant)
		} else {
			miss = dist.AccessTenant(a.Line(), a.Word(), a.IsWrite(), tenant).Outcome.IsMiss()
		}
		refs++
		if miss {
			misses++
		}
		if ctrl.Observe(tenant, a.Line(), a.Word()) {
			apply()
		}
	}

	parts := ""
	for i, w := range ctrl.Alloc() {
		if i > 0 {
			parts += "/"
		}
		parts += fmt.Sprint(w)
	}
	return float64(misses) / float64(refs), parts, ctrl.Rebalances()
}
