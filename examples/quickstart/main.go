// Quickstart: build the paper's default distill cache (LDIS-MT-RC),
// run a pointer-chasing benchmark against it and against the 1MB 8-way
// baseline, and print the four-outcome breakdown of Section 5.2.
package main

import (
	"fmt"

	"ldis"
)

func main() {
	const benchmark = "mcf"
	const accesses = 500_000

	base, err := mustNew(ldis.WithTraditional(1<<20, 8)).RunWorkload(benchmark, accesses)
	if err != nil {
		panic(err)
	}
	dist, err := mustNew(ldis.WithDistill(ldis.DefaultDistillConfig())).RunWorkload(benchmark, accesses)
	if err != nil {
		panic(err)
	}

	fmt.Println("baseline:", base)
	fmt.Println("distill: ", dist)
	fmt.Printf("\nMPKI: %.2f -> %.2f (%.1f%% reduction)\n",
		base.MPKI, dist.MPKI, 100*(base.MPKI-dist.MPKI)/base.MPKI)

	total := float64(dist.LOCHits + dist.WOCHits + dist.HoleMisses + dist.LineMisses)
	fmt.Printf("\ndistill-cache access outcomes (Section 5.2):\n")
	fmt.Printf("  LOC-hit   %5.1f%%\n", 100*float64(dist.LOCHits)/total)
	fmt.Printf("  WOC-hit   %5.1f%%   <- capacity recovered from unused words\n", 100*float64(dist.WOCHits)/total)
	fmt.Printf("  hole-miss %5.1f%%\n", 100*float64(dist.HoleMisses)/total)
	fmt.Printf("  line-miss %5.1f%%\n", 100*float64(dist.LineMisses)/total)
}

// mustNew builds a simulator from a known-good option set.
func mustNew(opts ...ldis.Option) *ldis.Sim {
	sim, err := ldis.New(opts...)
	if err != nil {
		panic(err)
	}
	return sim
}
