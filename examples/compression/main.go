// Compression: Section 8 of the paper. Cache compression and line
// distillation exploit different inefficiencies (value redundancy vs
// never-used words) and compose: footprint-aware compression (FAC)
// compresses only the used words of a distilled line, packing far more
// lines into the word-organized cache than either technique alone.
package main

import (
	"fmt"

	"ldis"
)

func main() {
	const benchmark = "mcf" // pointer data: low word usage AND compressible values
	const accesses = 1_000_000

	base, err := mustNew(ldis.WithTraditional(1<<20, 8)).RunWorkload(benchmark, accesses)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-40s MPKI %6.2f\n", "traditional 1MB 8-way", base.MPKI)

	report := func(label string, res ldis.Result) {
		fmt.Printf("%-40s MPKI %6.2f  (%.1f%% fewer misses)\n",
			label, res.MPKI, 100*(base.MPKI-res.MPKI)/base.MPKI)
	}

	// LDIS alone (2 and 3 WOC ways: the paper's 3x and 4x tag budgets).
	for _, woc := range []int{2, 3} {
		cfg := ldis.DefaultDistillConfig()
		cfg.WOCWays = woc
		res, err := mustNew(ldis.WithDistill(cfg)).RunWorkload(benchmark, accesses)
		if err != nil {
			panic(err)
		}
		report(fmt.Sprintf("LDIS (%d WOC ways)", woc), res)
	}

	// Compression alone (CMPR-4xTags, whole-line compression).
	res, err := mustNew(ldis.WithCompression(benchmark)).RunWorkload(benchmark, accesses)
	if err != nil {
		panic(err)
	}
	report("CMPR (compressed traditional, 4x tags)", res)

	// Footprint-aware compression: distill + compress the used words.
	cfg := ldis.DefaultDistillConfig()
	cfg.WOCWays = 3
	res, err = mustNew(ldis.WithFAC(cfg, benchmark)).RunWorkload(benchmark, accesses)
	if err != nil {
		panic(err)
	}
	report("FAC (footprint-aware compression)", res)

	fmt.Println("\nFAC compresses only the words the footprint proved useful,")
	fmt.Println("so each WOC way holds several compressed distilled lines.")
}

// mustNew builds a simulator from a known-good option set.
func mustNew(opts ...ldis.Option) *ldis.Sim {
	sim, err := ldis.New(opts...)
	if err != nil {
		panic(err)
	}
	return sim
}
