package ldis_test

import (
	"fmt"

	"ldis"
	"ldis/internal/costmodel"
)

// ExampleNew shows the one-call path from a named benchmark to a
// distill-cache result.
func ExampleNew() {
	sim, err := ldis.New(ldis.WithDistill(ldis.DefaultDistillConfig()))
	if err != nil {
		panic(err)
	}
	res, err := sim.RunWorkload("health", 200_000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("WOC hits observed: %v\n", res.WOCHits > 0)
	// Output:
	// WOC hits observed: true
}

// ExampleWithObserver attaches a metrics registry to a simulator and
// reads the recorded distill counters after the run.
func ExampleWithObserver() {
	reg := ldis.NewObserver()
	sim, err := ldis.New(
		ldis.WithDistill(ldis.DefaultDistillConfig()),
		ldis.WithObserver(reg))
	if err != nil {
		panic(err)
	}
	if _, err := sim.RunWorkload("health", 200_000); err != nil {
		panic(err)
	}
	for _, m := range reg.Snapshot() {
		if m.Name == "distill_lines_distilled" {
			fmt.Printf("distilled lines recorded: %v\n", m.Count > 0)
		}
	}
	// Output:
	// distilled lines recorded: true
}

// ExampleRunExperiment regenerates one of the paper's static tables.
func ExampleRunExperiment() {
	tables, err := ldis.RunExperiment("table4", ldis.DefaultExperimentOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println(tables[0].Title())
	// Output:
	// Table 4: encoding scheme for 32-bit data
}

// Example_storageOverhead reproduces the paper's Table 3 headline: the
// distill cache costs 12.2% extra area over the baseline L2.
func Example_storageOverhead() {
	s, err := costmodel.DistillStorage(costmodel.Defaults())
	if err != nil {
		panic(err)
	}
	fmt.Printf("total overhead: %dkB (%.1f%% of baseline area)\n",
		(s.TotalBytes+512)>>10, s.OverheadPercent)
	// Output:
	// total overhead: 133kB (12.2% of baseline area)
}

// Example_benchmarkSuite lists the first few synthetic stand-ins for the
// paper's SPEC CPU2000 benchmarks.
func Example_benchmarkSuite() {
	names := ldis.MainBenchmarks()
	fmt.Println(names[0], names[1], names[len(names)-1])
	// Output:
	// art mcf health
}
