package ldis

import (
	"testing"

	"ldis/internal/workload"
)

// TestMatrixAllBenchmarksAllOrganizations is the breadth smoke test:
// every registered benchmark runs on every cache organization without
// panicking, with sane accounting (hits+misses == L2 accesses, MPKI
// finite) and, for distill caches, intact structural invariants.
func TestMatrixAllBenchmarksAllOrganizations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full matrix")
	}
	const n = 25_000
	builders := map[string]func(benchmark string) (*Sim, error){
		"baseline": func(string) (*Sim, error) { return NewBaselineSim(), nil },
		"distill":  func(string) (*Sim, error) { return NewDistillSim(DefaultDistillConfig()), nil },
		"cmpr":     NewCompressedSim,
		"fac": func(b string) (*Sim, error) {
			return NewFACSim(DefaultDistillConfig(), b)
		},
		"sfp": func(string) (*Sim, error) { return NewSFPSim(0) },
	}
	for _, bench := range workload.Names() {
		for kind, build := range builders {
			sim, err := build(bench)
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, kind, err)
			}
			res, err := sim.RunWorkload(bench, n)
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, kind, err)
			}
			if res.Accesses != n {
				t.Errorf("%s/%s: ran %d accesses", bench, kind, res.Accesses)
			}
			if res.Instructions == 0 {
				t.Errorf("%s/%s: no instructions retired", bench, kind)
			}
			if res.MPKI < 0 || res.MPKI > 1000 {
				t.Errorf("%s/%s: implausible MPKI %v", bench, kind, res.MPKI)
			}
			if res.L2Misses > res.L2Accesses {
				t.Errorf("%s/%s: misses %d exceed accesses %d", bench, kind, res.L2Misses, res.L2Accesses)
			}
			if ds := sim.DistillStats(); ds != nil {
				if ds.Hits()+ds.Misses() != ds.Accesses {
					t.Errorf("%s/%s: distill accounting broken: %+v", bench, kind, ds)
				}
			}
		}
	}
}
