module ldis

go 1.24
