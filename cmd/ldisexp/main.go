// Command ldisexp regenerates the paper's tables and figures from the
// synthetic benchmark suite. Run with one or more experiment ids
// (fig1, fig2, fig6..fig11, fig13, table1..table6, overheads, mrc,
// partition, orgs, ablation-*) or "all". Per-experiment knobs travel
// in grouped flags holding key=value items:
//
//	ldisexp -accesses 2000000 fig6 fig7
//	ldisexp -mrc rate=0.2,max-samples=8192 mrc
//	ldisexp -partition tenants=twolf+mcf,epoch=6000 partition
//	ldisexp -orgs touche-sb-lines=8,waymemo-entries=8 orgs
//	ldisexp all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"ldis/internal/benchgate"
	"ldis/internal/exp"
	"ldis/internal/obs"
	"ldis/internal/stats"
	"ldis/internal/trace"
)

func main() {
	accesses := flag.Int("accesses", 1_000_000, "accesses per benchmark per configuration")
	warmup := flag.Float64("warmup", 0.25, "fraction of accesses excluded from measurement")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark subset (default: the paper's 16)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	markdown := flag.Bool("markdown", false, "emit tables as markdown")
	csv := flag.Bool("csv", false, "emit tables as CSV")
	parallel := flag.Int("parallel", 0, "worker goroutines for (benchmark × configuration) cells (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "split each shardable cell's cache state across this many workers by line-address hash; power of two, results byte-identical (0 = sequential)")
	batch := flag.Int("batch", 0, "record-block size of the batched access pipeline (0 = default "+fmt.Sprint(trace.DefaultBatchSize)+")")
	outDir := flag.String("out", "", "also write each experiment's tables to <dir>/<id>.txt (or .md/.csv per format flag)")
	resume := flag.Bool("resume", false, "checkpoint completed cells to <out>/"+exp.CheckpointFile+" and replay them on restart (requires -out)")
	keepGoing := flag.Bool("keep-going", false, "run every cell to completion; report failed cells in a table and exit nonzero instead of aborting at the first failure")
	retries := flag.Int("retries", 0, "extra attempts per failing cell before its failure counts")
	faultSeed := flag.Uint64("fault-seed", 0, "chaos testing: deterministically panic a seeded subset of cells (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	throughput := flag.String("throughput", "", "measure simulated accesses/sec per experiment and write a JSON report to this file (e.g. BENCH_throughput.json)")
	benchRepeats := flag.Int("bench-repeats", 3, "with -throughput: run each experiment this many times and report the median simulate time, damping scheduler noise")
	mrcFlag := flag.String("mrc", "", "mrc experiment knobs, comma-separated key=value items: "+mrcGroup.usage())
	partitionFlag := flag.String("partition", "", "partition experiment knobs, comma-separated key=value items: "+partitionGroup.usage())
	orgsFlag := flag.String("orgs", "", "orgs experiment knobs, comma-separated key=value items: "+orgsGroup.usage())
	obsAddr := flag.String("obs-addr", "", "serve live progress, metric snapshots, and net/http/pprof on this address (e.g. localhost:6060)")
	manifestPath := flag.String("manifest", "", "write the versioned run manifest to this path (default: <out>/"+obs.ManifestFile+" with -out, else ./"+obs.ManifestFile+")")
	verifyManifest := flag.Bool("verify-manifest", false, "after writing the manifest, read it back through the validating parser")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			line, _ := exp.Describe(id)
			fmt.Println(line)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ldisexp [flags] <experiment-id>... | all  (-list to enumerate)")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = exp.IDs()
	}

	o := exp.DefaultOptions()
	o.Accesses = *accesses
	o.WarmupFrac = *warmup
	o.Parallel = *parallel
	o.Shards = *shards
	o.BatchSize = *batch
	o.Retries = *retries
	o.FaultSeed = *faultSeed
	if *benchmarks != "" {
		o.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if *keepGoing {
		o.KeepGoing = true
		o.Failures = exp.NewFailureLog()
	}

	// Collect every configuration problem — CLI flag conflicts and
	// option validation — and report them all at once rather than one
	// per invocation.
	var problems []string
	problems = append(problems, mrcGroup.apply(&o, *mrcFlag)...)
	problems = append(problems, partitionGroup.apply(&o, *partitionFlag)...)
	problems = append(problems, orgsGroup.apply(&o, *orgsFlag)...)
	if *markdown && *csv {
		problems = append(problems, "-markdown and -csv are mutually exclusive; pick one output format")
	}
	if *resume && *outDir == "" {
		problems = append(problems, "-resume requires -out (the checkpoint lives in the output directory)")
	}
	if *benchRepeats < 1 {
		problems = append(problems, "-bench-repeats must be >= 1")
	}
	if *throughput != "" && *benchRepeats > 1 && *resume {
		problems = append(problems, "-bench-repeats > 1 with -resume would time checkpoint replays, not simulation; use -bench-repeats 1 or drop -resume")
	}
	if err := o.Validate(); err != nil {
		problems = append(problems, strings.Split(err.Error(), "\n")...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "ldisexp:", p)
		}
		os.Exit(2)
	}

	run := obs.NewRun(nil)
	o.Obs = run
	if *obsAddr != "" {
		srv, err := obs.StartServer(*obsAddr, run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldisexp:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("[obs: live progress and pprof at http://%s/]\n", srv.Addr())
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ldisexp:", err)
			os.Exit(1)
		}
	}
	var ck *exp.Checkpoint
	if *resume {
		path := filepath.Join(*outDir, exp.CheckpointFile)
		var err error
		if ck, err = exp.OpenCheckpoint(path, o); err != nil {
			fmt.Fprintln(os.Stderr, "ldisexp:", err)
			os.Exit(1)
		}
		defer ck.Close()
		if n := ck.Loaded(); n > 0 {
			fmt.Printf("[resuming: %d completed cells in %s]\n", n, path)
		}
		o.Checkpoint = ck
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldisexp:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ldisexp:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ldisexp:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ldisexp:", err)
			}
		}()
	}
	report := benchgate.Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    o.Parallel,
		Accesses:   o.Accesses,
	}
	if report.Workers == 0 {
		report.Workers = report.GoMaxProcs
	}
	if *throughput != "" {
		report.Shards = *shards
		if report.Shards < 1 {
			report.Shards = 1
		}
		report.Repeats = *benchRepeats
		// Throughput mode measures the simulator, not the collector: the
		// hot path is allocation-free, so the only GC work is scanning the
		// per-cell construction garbage. A higher GC target keeps most of
		// those cycles (write barriers, mark assists) out of the timed
		// window while still recycling memory between cells — disabling
		// collection outright measures slower, because every cell then
		// runs on cold, freshly-faulted pages.
		debug.SetGCPercent(400)
	}
	mpath := *manifestPath
	if mpath == "" {
		if *outDir != "" {
			mpath = filepath.Join(*outDir, obs.ManifestFile)
		} else {
			mpath = obs.ManifestFile
		}
	}
	emitManifest := func() {
		m := &obs.Manifest{
			Tool:        "ldisexp",
			GoVersion:   runtime.Version(),
			GitDescribe: gitDescribe(),
			Generated:   time.Now().UTC().Format(time.RFC3339),
			Workers:     report.Workers,
			Fingerprint: o.Fingerprint(),
			Experiments: ids,
			Params:      o.ManifestParams(),
		}
		m.Snapshot(run)
		if o.Failures != nil {
			m.Failures = o.Failures.Manifest()
		}
		if err := obs.WriteManifest(mpath, m); err != nil {
			fmt.Fprintln(os.Stderr, "ldisexp:", err)
			os.Exit(1)
		}
		if *verifyManifest {
			if _, err := obs.ReadManifest(mpath); err != nil {
				fmt.Fprintln(os.Stderr, "ldisexp: manifest verification failed:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("[manifest: %s]\n", mpath)
	}
	render := func(t *stats.Table) string {
		switch {
		case *csv:
			return t.CSV()
		case *markdown:
			return t.Markdown()
		default:
			return t.String()
		}
	}
	ext := ".txt"
	if *csv {
		ext = ".csv"
	} else if *markdown {
		ext = ".md"
	}
	for _, id := range ids {
		exp.ResetSimAccesses()
		exp.ResetDecodeNanos()
		start := time.Now()
		tables, err := exp.Run(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldisexp: %s: %v\n", id, err)
			if ck != nil {
				ck.Close()
				fmt.Fprintf(os.Stderr, "ldisexp: %d completed cells checkpointed; rerun with -resume to continue\n", ck.Recorded()+ck.Loaded())
			}
			emitManifest()
			os.Exit(1)
		}
		elapsed := time.Since(start)
		var out strings.Builder
		for _, t := range tables {
			out.WriteString(render(t))
			out.WriteByte('\n')
		}
		fmt.Print(out.String())
		if *outDir != "" {
			path := filepath.Join(*outDir, id+ext)
			if err := os.WriteFile(path, []byte(out.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "ldisexp: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		if *throughput != "" {
			e := measureRepeats(id, o, *benchRepeats, timing{
				wall: elapsed.Seconds(), decode: float64(exp.DecodeNanos()) / 1e9,
			})
			report.Results = append(report.Results, e)
			report.Total.SimAccesses += e.SimAccesses
			report.Total.Seconds += e.Seconds
			report.Total.DecodeSeconds += e.DecodeSeconds
			report.Total.SimSeconds += e.SimSeconds
		}
		fmt.Printf("[%s done in %v]\n\n", id, elapsed.Round(time.Millisecond))
	}
	emitManifest()
	if *throughput != "" {
		report.Total.ID = "total"
		if report.Total.SimSeconds > 0 {
			report.Total.AccessesPerSec = float64(report.Total.SimAccesses) / report.Total.SimSeconds
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldisexp:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*throughput, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ldisexp:", err)
			os.Exit(1)
		}
		fmt.Printf("throughput report: %s (%.0f accesses/s overall)\n", *throughput, report.Total.AccessesPerSec)
	}
	if ck != nil {
		fmt.Printf("[checkpoint: %d cells replayed, %d newly recorded]\n", ck.Replayed(), ck.Recorded())
	}
	if o.Failures != nil && o.Failures.Len() > 0 {
		failuresExit(o, ck)
	}
}

// timing is one repeat's wall and decode time.
type timing struct{ wall, decode float64 }

// sim returns the simulate-only time: wall minus record generation.
// The bench targets pin -parallel 1, where the decode counter (a CPU
// sum across workers) equals its wall share; at higher worker counts
// the subtraction over-corrects, so fall back to wall time if it goes
// nonpositive.
func (t timing) sim() float64 {
	if s := t.wall - t.decode; s > 0 {
		return s
	}
	return t.wall
}

// measureRepeats turns one completed (already timed) run plus repeats-1
// silent re-runs into the experiment's throughput entry, reporting the
// repeat with the median simulate time. Re-runs disable observability
// and checkpointing so they time pure simulation and leave the first
// run's manifest and checkpoint untouched.
func measureRepeats(id string, o exp.Options, repeats int, first timing) benchgate.Entry {
	accesses := exp.SimAccesses()
	times := []timing{first}
	o.Obs = nil
	o.Checkpoint = nil
	for r := 1; r < repeats; r++ {
		exp.ResetSimAccesses()
		exp.ResetDecodeNanos()
		start := time.Now()
		if _, err := exp.Run(id, o); err != nil {
			// The first run of the same options succeeded; treat a
			// repeat failure as fatal rather than reporting a timing
			// that measured a crash.
			fmt.Fprintf(os.Stderr, "ldisexp: %s: repeat %d: %v\n", id, r+1, err)
			os.Exit(1)
		}
		times = append(times, timing{
			wall: time.Since(start).Seconds(), decode: float64(exp.DecodeNanos()) / 1e9,
		})
	}
	sort.Slice(times, func(i, j int) bool { return times[i].sim() < times[j].sim() })
	med := times[len(times)/2]
	e := benchgate.Entry{
		ID:            id,
		SimAccesses:   accesses,
		Seconds:       med.wall,
		DecodeSeconds: med.decode,
		SimSeconds:    med.sim(),
	}
	if e.SimSeconds > 0 {
		e.AccessesPerSec = float64(e.SimAccesses) / e.SimSeconds
	}
	return e
}

// failuresExit renders the failure table and exits nonzero; split out
// so the main run path reads top to bottom.
func failuresExit(o exp.Options, ck *exp.Checkpoint) {
	// The failure table is deterministic: same cells, same order,
	// at any worker count.
	fmt.Fprint(os.Stderr, o.Failures.Table().String())
	fmt.Fprintf(os.Stderr, "ldisexp: %d cells failed; healthy benchmarks rendered above\n", o.Failures.Len())
	if ck != nil {
		ck.Close()
	}
	os.Exit(1)
}

// gitDescribe identifies the source tree the binary was built from:
// `git describe` when a repository is reachable, else the VCS stamp
// embedded by the Go toolchain, else empty.
func gitDescribe() string {
	if out, err := exec.Command("git", "describe", "--always", "--dirty").Output(); err == nil {
		return strings.TrimSpace(string(out))
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}
