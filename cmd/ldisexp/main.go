// Command ldisexp regenerates the paper's tables and figures from the
// synthetic benchmark suite. Run with one or more experiment ids
// (fig1, fig2, fig6..fig11, fig13, table1..table6, overheads) or "all".
//
//	ldisexp -accesses 2000000 fig6 fig7
//	ldisexp all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ldis/internal/exp"
	"ldis/internal/stats"
)

func main() {
	accesses := flag.Int("accesses", 1_000_000, "accesses per benchmark per configuration")
	warmup := flag.Float64("warmup", 0.25, "fraction of accesses excluded from measurement")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark subset (default: the paper's 16)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	markdown := flag.Bool("markdown", false, "emit tables as markdown")
	csv := flag.Bool("csv", false, "emit tables as CSV")
	parallel := flag.Int("parallel", 0, "benchmark worker goroutines (0 = GOMAXPROCS)")
	outDir := flag.String("out", "", "also write each experiment's tables to <dir>/<id>.txt (or .md/.csv per format flag)")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			about, _ := exp.About(id)
			fmt.Printf("%-10s %s\n", id, about)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ldisexp [flags] <experiment-id>... | all  (-list to enumerate)")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = exp.IDs()
	}

	o := exp.DefaultOptions()
	o.Accesses = *accesses
	o.WarmupFrac = *warmup
	o.Parallel = *parallel
	if *benchmarks != "" {
		o.Benchmarks = strings.Split(*benchmarks, ",")
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ldisexp:", err)
			os.Exit(1)
		}
	}
	render := func(t *stats.Table) string {
		switch {
		case *csv:
			return t.CSV()
		case *markdown:
			return t.Markdown()
		default:
			return t.String()
		}
	}
	ext := ".txt"
	if *csv {
		ext = ".csv"
	} else if *markdown {
		ext = ".md"
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := exp.Run(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldisexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		var out strings.Builder
		for _, t := range tables {
			out.WriteString(render(t))
			out.WriteByte('\n')
		}
		fmt.Print(out.String())
		if *outDir != "" {
			path := filepath.Join(*outDir, id+ext)
			if err := os.WriteFile(path, []byte(out.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "ldisexp: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
