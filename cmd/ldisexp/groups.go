package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ldis/internal/exp"
)

// Grouped experiment flags: each experiment family's knobs ride in one
// -<group> flag holding comma-separated key=value items, e.g.
//
//	-mrc rate=0.2,max-samples=8192
//	-partition tenants=twolf+mcf,epoch=6000
//	-orgs touche-sb-lines=8,waymemo-entries=8
//
// so the flag surface grows per experiment family, not per knob. The
// parser mirrors exp.Options.Validate's collect-everything style: it
// reports every unknown key, malformed item, duplicate, and bad value
// in one pass instead of stopping at the first.

// groupKey is one key of a grouped flag: its value syntax (for the
// usage string) and the setter that applies a parsed value.
type groupKey struct {
	value string
	set   func(o *exp.Options, val string) error
}

// group is one grouped flag: a name and its key table.
type group struct {
	name string
	keys map[string]groupKey
}

// usage renders the group's key=value vocabulary for the flag help.
func (g group) usage() string {
	names := make([]string, 0, len(g.keys))
	for k := range g.keys {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = k + "=" + g.keys[k].value
	}
	return strings.Join(parts, ",")
}

// apply parses spec ("k=v[,k=v...]", empty = all defaults) into o,
// returning one problem string per defect — never a partial success
// hidden behind the first error.
func (g group) apply(o *exp.Options, spec string) []string {
	var problems []string
	if spec == "" {
		return nil
	}
	seen := make(map[string]bool)
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			problems = append(problems, fmt.Sprintf("-%s: empty item (stray comma?)", g.name))
			continue
		}
		k, v, ok := strings.Cut(item, "=")
		if !ok {
			problems = append(problems, fmt.Sprintf("-%s: %q is not key=value", g.name, item))
			continue
		}
		key, known := g.keys[k]
		if !known {
			problems = append(problems, fmt.Sprintf("-%s: unknown key %q (valid: %s)", g.name, k, g.usage()))
			continue
		}
		if seen[k] {
			problems = append(problems, fmt.Sprintf("-%s: duplicate key %q", g.name, k))
			continue
		}
		seen[k] = true
		if err := key.set(o, v); err != nil {
			problems = append(problems, fmt.Sprintf("-%s: %s: %v", g.name, k, err))
		}
	}
	return problems
}

// intKey and floatKey build setters for plain numeric knobs.
func intKey(value string, dst func(o *exp.Options) *int) groupKey {
	return groupKey{value: value, set: func(o *exp.Options, val string) error {
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad value %q: want an integer", val)
		}
		*dst(o) = n
		return nil
	}}
}

func floatKey(value string, dst func(o *exp.Options) *float64) groupKey {
	return groupKey{value: value, set: func(o *exp.Options, val string) error {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad value %q: want a number", val)
		}
		*dst(o) = f
		return nil
	}}
}

// mrcGroup bundles the mrc experiment's SHARDS and curve knobs.
var mrcGroup = group{name: "mrc", keys: map[string]groupKey{
	"rate":        floatKey("<0..1>", func(o *exp.Options) *float64 { return &o.MRCSampleRate }),
	"max-samples": intKey("<n>", func(o *exp.Options) *int { return &o.MRCMaxSamples }),
	"resolution":  intKey("<bytes>", func(o *exp.Options) *int { return &o.MRCResolution }),
	"max":         intKey("<bytes>", func(o *exp.Options) *int { return &o.MRCMaxBytes }),
}}

// partitionGroup bundles the partition experiment's scenario and
// controller knobs. Tenants are joined with "+" inside the item so the
// group's comma separator stays unambiguous.
var partitionGroup = group{name: "partition", keys: map[string]groupKey{
	"tenants": {value: "<bench+bench...>", set: func(o *exp.Options, val string) error {
		if val == "" {
			return fmt.Errorf("bad value %q: want benchmarks joined with +", val)
		}
		o.Tenants = strings.Split(val, "+")
		return nil
	}},
	"policy": {value: "static|ucp|ldis", set: func(o *exp.Options, val string) error {
		o.PartitionPolicy = val
		return nil
	}},
	"epoch": intKey("<accesses>", func(o *exp.Options) *int { return &o.EpochAccesses }),
}}

// orgsGroup bundles the orgs experiment's per-variant knobs.
var orgsGroup = group{name: "orgs", keys: map[string]groupKey{
	"touche-sb-lines":    intKey("<pow2>", func(o *exp.Options) *int { return &o.OrgToucheSBLines }),
	"copyback-max-reuse": intKey("<bytes>", func(o *exp.Options) *int { return &o.OrgCopyBackMaxReuse }),
	"waymemo-entries":    intKey("<pow2>", func(o *exp.Options) *int { return &o.OrgWayMemoEntries }),
}}
