package main

import (
	"strings"
	"testing"

	"ldis/internal/exp"
)

// TestGroupApply pins the grouped-flag parser: every defect class —
// unknown key, malformed item, duplicate key, bad value — is reported
// (all of them, not just the first), and valid specs land in the right
// exp.Options fields.
func TestGroupApply(t *testing.T) {
	cases := []struct {
		name  string
		group group
		spec  string
		// wantProblems: substrings that must each appear in the joined
		// problem list.
		wantProblems []string
		// minProblems: least number of distinct problems expected (0 =
		// exactly len(wantProblems) defects need not be distinct).
		minProblems int
		check       func(t *testing.T, o exp.Options)
	}{
		{
			name:  "empty spec is all defaults",
			group: mrcGroup,
			spec:  "",
		},
		{
			name:  "mrc full set",
			group: mrcGroup,
			spec:  "rate=0.2,max-samples=8192,resolution=131072,max=2097152",
			check: func(t *testing.T, o exp.Options) {
				if o.MRCSampleRate != 0.2 || o.MRCMaxSamples != 8192 ||
					o.MRCResolution != 131072 || o.MRCMaxBytes != 2097152 {
					t.Errorf("mrc knobs not applied: %+v", o)
				}
			},
		},
		{
			name:  "unknown key lists the vocabulary",
			group: mrcGroup,
			spec:  "rte=0.2",
			wantProblems: []string{
				`unknown key "rte"`, "max-samples=",
			},
		},
		{
			name:  "bad value",
			group: mrcGroup,
			spec:  "rate=fast",
			wantProblems: []string{
				`bad value "fast"`,
			},
		},
		{
			name:  "duplicate key",
			group: mrcGroup,
			spec:  "rate=0.1,rate=0.2",
			wantProblems: []string{
				`duplicate key "rate"`,
			},
		},
		{
			name:  "missing equals",
			group: mrcGroup,
			spec:  "rate",
			wantProblems: []string{
				`"rate" is not key=value`,
			},
		},
		{
			name:  "stray comma",
			group: mrcGroup,
			spec:  "rate=0.1,,max=65536",
			wantProblems: []string{
				"empty item",
			},
		},
		{
			name:  "every defect reported at once",
			group: mrcGroup,
			spec:  "rte=1,rate=x,max=64,max=65",
			wantProblems: []string{
				`unknown key "rte"`, `bad value "x"`, `duplicate key "max"`,
			},
			minProblems: 3,
		},
		{
			name:  "partition tenants split on plus",
			group: partitionGroup,
			spec:  "tenants=twolf+mcf+art,policy=ucp,epoch=6000",
			check: func(t *testing.T, o exp.Options) {
				if len(o.Tenants) != 3 || o.Tenants[0] != "twolf" || o.Tenants[2] != "art" {
					t.Errorf("tenants not split: %v", o.Tenants)
				}
				if o.PartitionPolicy != "ucp" || o.EpochAccesses != 6000 {
					t.Errorf("partition knobs not applied: %+v", o)
				}
			},
		},
		{
			name:  "partition empty tenants",
			group: partitionGroup,
			spec:  "tenants=",
			wantProblems: []string{
				"want benchmarks joined with +",
			},
		},
		{
			name:  "orgs knobs",
			group: orgsGroup,
			spec:  "touche-sb-lines=8,copyback-max-reuse=65536,waymemo-entries=16",
			check: func(t *testing.T, o exp.Options) {
				if o.OrgToucheSBLines != 8 || o.OrgCopyBackMaxReuse != 65536 || o.OrgWayMemoEntries != 16 {
					t.Errorf("orgs knobs not applied: %+v", o)
				}
			},
		},
		{
			name:  "orgs float where int expected",
			group: orgsGroup,
			spec:  "waymemo-entries=4.5",
			wantProblems: []string{
				"want an integer",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var o exp.Options
			problems := tc.group.apply(&o, tc.spec)
			if len(tc.wantProblems) == 0 && len(problems) > 0 {
				t.Fatalf("unexpected problems: %v", problems)
			}
			joined := strings.Join(problems, "\n")
			for _, want := range tc.wantProblems {
				if !strings.Contains(joined, want) {
					t.Errorf("problems %q missing %q", joined, want)
				}
			}
			if len(problems) < tc.minProblems {
				t.Errorf("got %d problems, want at least %d: %v", len(problems), tc.minProblems, problems)
			}
			if tc.check != nil {
				tc.check(t, o)
			}
		})
	}
}

// TestGroupUsageDeterministic: the usage string enumerates keys
// sorted, so flag help is stable run to run.
func TestGroupUsageDeterministic(t *testing.T) {
	for _, g := range []group{mrcGroup, partitionGroup, orgsGroup} {
		u := g.usage()
		if u != g.usage() {
			t.Errorf("-%s usage not deterministic", g.name)
		}
		items := strings.Split(u, ",")
		for i := 1; i < len(items); i++ {
			prev, _, _ := strings.Cut(items[i-1], "=")
			cur, _, _ := strings.Cut(items[i], "=")
			if prev >= cur {
				t.Errorf("-%s usage keys not sorted: %q", g.name, u)
			}
		}
	}
}
