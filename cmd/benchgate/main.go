// Command benchgate compares a freshly generated throughput report
// against the committed baseline and exits nonzero when any experiment
// (or the total) regressed beyond the tolerance. It is the check behind
// `make bench-gate`; promote a new baseline explicitly with
// `make bench-promote`.
//
//	benchgate -baseline benchmarks/baseline/BENCH_throughput.json \
//	          -latest benchmarks/latest/BENCH_throughput.json -tolerance 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	"ldis/internal/benchgate"
)

func main() {
	baseline := flag.String("baseline", "benchmarks/baseline/BENCH_throughput.json", "committed baseline throughput report")
	latest := flag.String("latest", "benchmarks/latest/BENCH_throughput.json", "freshly generated throughput report")
	tolerance := flag.Float64("tolerance", 0.05, "allowed fractional slowdown per experiment (0.05 = 5%)")
	flag.Parse()

	if *tolerance < 0 || *tolerance >= 1 {
		fmt.Fprintf(os.Stderr, "benchgate: tolerance %v outside [0, 1)\n", *tolerance)
		os.Exit(2)
	}
	base, err := benchgate.Load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cur, err := benchgate.Load(*latest)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := benchgate.Gate(base, cur, *tolerance); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok — %d experiments within %.0f%% of baseline (total %.0f vs %.0f acc/s)\n",
		len(base.Results), 100**tolerance, cur.Total.Rate(), base.Total.Rate())
}
