// Command tracegen materializes a synthetic benchmark's access stream
// into a binary trace file (or inspects an existing one), so traces can
// be archived, diffed, or replayed by external tools.
//
//	tracegen -benchmark mcf -accesses 1000000 -o mcf.ldtr
//	tracegen -inspect mcf.ldtr
package main

import (
	"flag"
	"fmt"
	"os"

	"ldis/internal/mem"
	"ldis/internal/stats"
	"ldis/internal/trace"
	"ldis/internal/workload"
)

func main() {
	benchmark := flag.String("benchmark", "mcf", "synthetic benchmark name")
	accesses := flag.Int("accesses", 1_000_000, "number of accesses to generate")
	out := flag.String("o", "", "output trace file (required unless -inspect)")
	inspect := flag.String("inspect", "", "inspect an existing trace file instead of generating")
	flag.Parse()

	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o required (or use -inspect)")
		os.Exit(2)
	}
	prof, err := workload.ByName(*benchmark)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	accs := prof.Trace(*accesses)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.Write(f, accs); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d accesses (%d instructions) of %s to %s\n",
		len(accs), trace.CountInstructions(accs), *benchmark, *out)
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	accs, err := trace.Read(f)
	if err != nil {
		return err
	}
	var loads, stores uint64
	lines := map[mem.LineAddr]struct{}{}
	words := stats.NewHistogram("word", mem.WordsPerLine)
	for _, a := range accs {
		switch a.Kind {
		case mem.Load:
			loads++
		case mem.Store:
			stores++
		}
		lines[a.Line()] = struct{}{}
		words.Add(a.Word())
	}
	fmt.Printf("%s: %d accesses (%d loads, %d stores), %d instructions\n",
		path, len(accs), loads, stores, trace.CountInstructions(accs))
	fmt.Printf("distinct lines: %d (%.2f MB footprint)\n",
		len(lines), float64(len(lines)*mem.LineSize)/(1<<20))
	fmt.Printf("word-offset distribution: %v\n", words)
	return nil
}
