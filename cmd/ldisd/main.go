// Command ldisd serves the line-distillation experiment engine and
// trace replay as a hardened HTTP API.
//
// Usage:
//
//	ldisd -addr 127.0.0.1:8080 -data ./ldisd-data
//
// Endpoints (see DESIGN.md §12 and the README "Service" section):
//
//	GET  /healthz                   liveness + queue occupancy
//	GET  /v1/experiments            registered experiment ids
//	POST /v1/jobs                   submit a job spec (JSON)
//	GET  /v1/jobs                   list jobs
//	GET  /v1/jobs/{id}              job status
//	GET  /v1/jobs/{id}/result       stream results (?wait=1 long-polls)
//	GET  /v1/jobs/{id}/manifest     per-job run manifest
//	POST /v1/traces                 upload a binary trace
//	GET  /v1/traces/{id}            stored trace metadata
//
// The first SIGINT/SIGTERM drains gracefully (stop admitting, shed
// queued jobs as retryable, finish in-flight work under -drain-timeout,
// then close the listener); a second signal forces a fast exit with
// checkpoints preserved.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ldis/internal/server"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile       = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts driving -addr :0)")
		dataDir        = flag.String("data", "ldisd-data", "data directory for job checkpoints, manifests, and uploaded traces")
		queueDepth     = flag.Int("queue", 0, "admission queue depth; beyond it jobs are shed with 429 (0 = default 8)")
		workers        = flag.Int("workers", 0, "concurrent job executors (0 = default 2)")
		parallel       = flag.Int("parallel", 0, "per-job cell worker cap (0 = GOMAXPROCS)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline for in-flight jobs on SIGINT/SIGTERM")
		requestTimeout = flag.Duration("request-timeout", 0, "per-request handler deadline (0 = default 60s)")
		maxBodyBytes   = flag.Int64("max-body-bytes", 0, "trace-upload body cap in bytes (0 = default 64 MiB)")
		maxAccesses    = flag.Int("max-accesses", 0, "admission cap on a job's per-cell access count (0 = default 5,000,000)")
		faultSeed      = flag.Uint64("fault-seed", 0, "chaos-testing seed: deterministically panic a seeded subset of jobs (0 = off)")
	)
	flag.Parse()

	s, err := server.New(server.Config{
		DataDir:        *dataDir,
		QueueDepth:     *queueDepth,
		Workers:        *workers,
		CellWorkers:    *parallel,
		MaxAccesses:    *maxAccesses,
		MaxBodyBytes:   *maxBodyBytes,
		RequestTimeout: *requestTimeout,
		FaultSeed:      *faultSeed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := s.Start(*addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *addrFile != "" {
		// Write-then-rename so a watcher never reads a half-written
		// address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(s.Addr()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	server.RunSignals(s, sig, *drainTimeout, os.Exit)
}
