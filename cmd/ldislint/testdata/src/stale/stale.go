// Package stale is the -stale driver fixture: a justified suppression
// no analyzer needs and a typo'd directive name, both of which the
// sweep must flag. It lives under testdata so ./... never loads it.
package stale

//ldis:aloc-ok typo: neither suppresses nor errors without the sweep
var X = 1

// F allocates nowhere and is under no //ldis:noalloc root, so its
// suppression silences nothing.
func F() int {
	//ldis:alloc-ok justified, but no diagnostic needs it
	return 2
}
