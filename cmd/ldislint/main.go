// Ldislint is the simulator's static-analysis gate: a multichecker
// over the analyzers in internal/analysis (noalloc, detrange,
// nowallclock, gridpure, sharddisjoint, atomicplain, boundedgo) that
// enforces the determinism, zero-allocation, and concurrency-safety
// invariants the experiment engine depends on.
//
// Two driver modes:
//
//	ldislint [-json] [-stale] [packages]
//	                          standalone whole-module run (default
//	                          ./...); analyzes every module package in
//	                          dependency order so cross-package facts
//	                          (noalloc clean summaries, sharddisjoint
//	                          confinement, atomicplain locations) are
//	                          available. This is what `make lint` runs
//	                          and it is the authoritative gate.
//
//	go vet -vettool=$(command -v ldislint) ./...
//	                          vet driver mode. The go command invokes
//	                          ldislint once per package with a JSON
//	                          config file (the unitchecker protocol);
//	                          each package is checked in isolation, so
//	                          cross-package verification is skipped in
//	                          this mode.
//
// Flags (standalone mode only):
//
//	-json   emit every diagnostic as one JSON object per line —
//	        {"analyzer","pos","message","suppressed"[,"suppressed_by"]} —
//	        including the suppressed ones text mode hides; CI uploads
//	        this as the lint-report artifact. The exit code still counts
//	        only unsuppressed diagnostics.
//	-stale  run the stale-suppression sweep instead of the analyzers'
//	        normal reporting: every justified //ldis:*-ok directive that
//	        no analyzer consulted, and every unknown //ldis: name, is a
//	        diagnostic. This is `make lint-fix-check`.
//
// Exit status: 0 clean, 1 usage or load failure, 2 diagnostics.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ldis/internal/analysis"
	"ldis/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	// The go command probes vettools before use: `-V=full` must print
	// a version line carrying a build ID (it keys vet's result cache on
	// it; a content hash of the executable serves), and `-flags` must
	// describe the supported flags.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldislint: %v\n", err)
			return 1
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldislint: %v\n", err)
			return 1
		}
		id := sha256.Sum256(data)
		fmt.Printf("%s version devel buildID=%02x\n", filepath.Base(os.Args[0]), id[:16])
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitcheck(args[0])
	}

	fs := flag.NewFlagSet("ldislint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON records (one object per line), including suppressed ones")
	staleMode := fs.Bool("stale", false, "report stale suppression directives and unknown //ldis: names instead of analyzer diagnostics")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ldislint [-json] [-stale] [packages]\n\nAnalyzers:\n")
		for _, a := range suite.All {
			fmt.Fprintf(os.Stderr, "  %-13s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldislint: %v\n", err)
		return 1
	}
	var diags []analysis.Diagnostic
	if *staleMode {
		diags = analysis.StaleSuppressions(suite.All, pkgs)
	} else {
		diags = analysis.Run(suite.All, pkgs)
	}
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "ldislint: %v\n", err)
			return 1
		}
	} else {
		for _, d := range analysis.Unsuppressed(diags) {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(analysis.Unsuppressed(diags)) > 0 {
		return 2
	}
	return 0
}

// jsonDiag is the `-json` record shape: one object per line, stable
// field names, so CI artifacts diff cleanly across runs.
type jsonDiag struct {
	Analyzer   string `json:"analyzer"`
	Pos        string `json:"pos"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	// SuppressedBy is the position of the justifying //ldis: directive
	// when Suppressed is set.
	SuppressedBy string `json:"suppressed_by,omitempty"`
}

// writeJSON emits every diagnostic — suppressed ones included, which
// is the point: the artifact shows what the directives are hiding —
// as newline-delimited JSON.
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		rec := jsonDiag{
			Analyzer:   d.Analyzer,
			Pos:        d.Pos.String(),
			Message:    d.Message,
			Suppressed: d.Suppressed,
		}
		if d.Suppressed {
			rec.SuppressedBy = d.SupPos.String()
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// vetConfig is the JSON configuration the go command hands a vettool
// for each package (the x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package as directed by a vet config file.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldislint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ldislint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command requires the facts output file to exist even
	// though this suite's cross-package facts only flow in standalone
	// mode.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ldislint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldislint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ldislint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		GoFiles:    cfg.GoFiles,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		Info:       info,
	}
	diags := analysis.Unsuppressed(analysis.RunSingle(suite.All, pkg))
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
