package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestStandaloneClean runs the in-process driver against a package
// known to be lint-clean.
func TestStandaloneClean(t *testing.T) {
	if code := run([]string{"ldis/internal/mem"}); code != 0 {
		t.Fatalf("ldislint ldis/internal/mem exited %d, want 0", code)
	}
}

// TestVettoolProtocol builds the binary and drives it through the go
// command's vettool handshake (-V=full probe, per-package .cfg
// invocations) against a clean package. This is the protocol `go vet
// -vettool=$(command -v ldislint)` relies on.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "ldislint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ldislint: %v\n%s", err, out)
	}

	probe := exec.Command(bin, "-V=full")
	out, err := probe.Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.Contains(string(out), "buildID=") {
		t.Fatalf("-V=full output %q lacks the buildID the go command parses", out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "ldis/internal/mem")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean package: %v\n%s", err, out)
	}
}
