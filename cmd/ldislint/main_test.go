package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestStandaloneClean runs the in-process driver against a package
// known to be lint-clean.
func TestStandaloneClean(t *testing.T) {
	if code := run([]string{"ldis/internal/mem"}, io.Discard); code != 0 {
		t.Fatalf("ldislint ldis/internal/mem exited %d, want 0", code)
	}
}

// TestJSONMode checks the -json record shape against a package known
// to carry suppressed diagnostics: every line must decode, suppressed
// records must name their directive, and none of it may flip the exit
// code.
func TestJSONMode(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-json", "ldis/internal/hierarchy"}, &buf); code != 0 {
		t.Fatalf("ldislint -json exited %d on a lint-clean package, want 0\n%s", code, buf.String())
	}
	var suppressed int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec struct {
			Analyzer     string `json:"analyzer"`
			Pos          string `json:"pos"`
			Message      string `json:"message"`
			Suppressed   bool   `json:"suppressed"`
			SuppressedBy string `json:"suppressed_by"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		if rec.Analyzer == "" || rec.Pos == "" || rec.Message == "" {
			t.Errorf("record missing fields: %q", sc.Text())
		}
		if rec.Suppressed {
			suppressed++
			if rec.SuppressedBy == "" {
				t.Errorf("suppressed record lacks suppressed_by: %q", sc.Text())
			}
		} else {
			t.Errorf("unsuppressed diagnostic on a clean package: %q", sc.Text())
		}
	}
	if suppressed == 0 {
		t.Error("hierarchy's //ldis: suppressions produced no suppressed records; the artifact would hide what the directives hide")
	}
}

// TestStaleMode runs the sweep against a fixture carrying a stale
// suppression and a typo'd directive; both must be flagged, and a
// clean package must pass.
func TestStaleMode(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-stale", "./testdata/src/stale"}, &buf); code != 2 {
		t.Fatalf("ldislint -stale exited %d on the stale fixture, want 2\n%s", code, buf.String())
	}
	for _, want := range []string{"stale suppression //ldis:alloc-ok", "unknown directive //ldis:aloc-ok"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("stale output missing %q:\n%s", want, buf.String())
		}
	}
	if code := run([]string{"-stale", "ldis/internal/mem"}, io.Discard); code != 0 {
		t.Fatalf("ldislint -stale exited %d on a clean package, want 0", code)
	}
}

// TestVettoolProtocol builds the binary and drives it through the go
// command's vettool handshake (-V=full probe, per-package .cfg
// invocations) against a clean package. This is the protocol `go vet
// -vettool=$(command -v ldislint)` relies on.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "ldislint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ldislint: %v\n%s", err, out)
	}

	probe := exec.Command(bin, "-V=full")
	out, err := probe.Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.Contains(string(out), "buildID=") {
		t.Fatalf("-V=full output %q lacks the buildID the go command parses", out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "ldis/internal/mem")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean package: %v\n%s", err, out)
	}
}
