// Command distillsim runs one synthetic benchmark through one cache
// organization and prints the resulting statistics.
//
//	distillsim -benchmark mcf -cache distill -accesses 2000000
//	distillsim -benchmark swim -cache baseline
//	distillsim -benchmark health -cache distill -woc-ways 3 -no-reverter
//	distillsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ldis"
	"ldis/internal/mem"
	"ldis/internal/obs"
	"ldis/internal/trace"
	"ldis/internal/workload"
)

func main() {
	benchmark := flag.String("benchmark", "mcf", "synthetic benchmark name")
	traceFile := flag.String("trace", "", "replay a binary trace file (from tracegen) instead of a synthetic benchmark")
	lenient := flag.Bool("lenient", false, "with -trace: replay the valid prefix of a corrupt trace instead of refusing it")
	cacheKind := flag.String("cache", "distill", "cache organization: baseline | distill | cmpr | fac | sfp | trad")
	accesses := flag.Int("accesses", 1_000_000, "number of memory accesses to simulate")
	sizeMB := flag.Int("size-mb", 1, "cache size in MB (trad only)")
	ways := flag.Int("ways", 8, "associativity (trad only)")
	wocWays := flag.Int("woc-ways", 2, "WOC ways (distill/fac)")
	noMT := flag.Bool("no-mt", false, "disable median-threshold filtering")
	noReverter := flag.Bool("no-reverter", false, "disable the reverter circuit")
	ipc := flag.Bool("ipc", false, "also run the execution-driven timing model")
	metrics := flag.Bool("metrics", false, "attach an observer and print the metric snapshot and span timings after the run")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(workload.Names(), "\n"))
		return
	}

	// Collect every configuration problem and report them all at once.
	var problems []string
	if *accesses <= 0 {
		problems = append(problems, fmt.Sprintf("-accesses must be positive, got %d", *accesses))
	}
	if *sizeMB <= 0 {
		problems = append(problems, fmt.Sprintf("-size-mb must be positive, got %d", *sizeMB))
	}
	if *ways <= 0 {
		problems = append(problems, fmt.Sprintf("-ways must be positive, got %d", *ways))
	}
	if *wocWays < 0 {
		problems = append(problems, fmt.Sprintf("-woc-ways must be non-negative, got %d", *wocWays))
	}

	var reg *ldis.Observer
	var decodeSpans *obs.Spans
	if *metrics {
		reg = ldis.NewObserver()
		decodeSpans = obs.NewSpans(nil)
	}
	sim, err := buildSim(*cacheKind, *benchmark, *sizeMB, *ways, *wocWays, !*noMT, !*noReverter, reg)
	if err != nil {
		problems = append(problems, strings.Split(err.Error(), "\n")...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "distillsim:", p)
		}
		os.Exit(2)
	}

	var res ldis.Result
	if *traceFile != "" {
		// Streaming decode: records flow from the file through the
		// batched pipeline without materializing the whole trace, so
		// replay memory stays flat in the trace length.
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "distillsim:", err)
			os.Exit(1)
		}
		br, err := trace.NewBatchReader(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "distillsim:", err)
			os.Exit(1)
		}
		res = sim.RunStream(*traceFile, &timedStream{br: br, sp: decodeSpans}, *accesses)
		f.Close()
		if cerr := br.Err(); cerr != nil {
			if !*lenient {
				fmt.Fprintln(os.Stderr, "distillsim:", cerr)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "distillsim: warning: %v; replayed the valid prefix\n", cerr)
		}
	} else {
		res, err = sim.RunWorkload(*benchmark, *accesses)
		if err != nil {
			fmt.Fprintln(os.Stderr, "distillsim:", err)
			os.Exit(1)
		}
	}
	fmt.Println(res)
	if ds := sim.DistillStats(); ds != nil {
		fmt.Printf("distilled=%d threshold-skips=%d woc-evictions=%d mode-switches=%d writebacks=%d\n",
			ds.Distilled, ds.ThresholdSkips, ds.WOCEvictions, ds.ModeSwitches, ds.Writebacks)
		fmt.Printf("words used at LOC eviction: %v\n", ds.WordsUsedAtEvict)
	}
	if *metrics {
		printMetrics(reg, decodeSpans)
	}

	if *ipc {
		base, dist, err := ldis.MeasureIPC(*benchmark, *accesses)
		if err != nil {
			fmt.Fprintln(os.Stderr, "distillsim:", err)
			os.Exit(1)
		}
		fmt.Printf("IPC: baseline %.3f (MPKI %.2f)  distill %.3f (MPKI %.2f)  improvement %.1f%%\n",
			base.IPC, base.MPKI, dist.IPC, dist.MPKI, 100*(dist.IPC-base.IPC)/base.IPC)
	}
}

// timedStream adapts the streaming trace decoder to the simulator,
// charging each refill to the decode span so -metrics reports decode
// time separately from simulation. It forwards both the scalar and the
// block interface; the batched pipeline uses the latter.
type timedStream struct {
	br *trace.BatchReader
	sp *obs.Spans
}

func (t *timedStream) Next() (mem.Access, bool) {
	tok := t.sp.Begin(obs.StageDecode)
	a, ok := t.br.Next()
	t.sp.End(obs.StageDecode, tok)
	return a, ok
}

func (t *timedStream) NextBatch(dst []trace.Record) int {
	tok := t.sp.Begin(obs.StageDecode)
	n := t.br.NextBatch(dst)
	t.sp.End(obs.StageDecode, tok)
	return n
}

// printMetrics dumps the observer's registry snapshot and the trace
// decode span aggregate in a stable, grep-friendly form.
func printMetrics(reg *ldis.Observer, decode *obs.Spans) {
	fmt.Println("metrics:")
	for _, m := range reg.Snapshot() {
		switch m.Kind {
		case "histogram":
			fmt.Printf("  %-9s %-28s bounds=%v buckets=%v\n", m.Kind, m.Name, m.Bounds, m.Buckets)
		case "gauge":
			fmt.Printf("  %-9s %-28s %g\n", m.Kind, m.Name, m.Value)
		default:
			fmt.Printf("  %-9s %-28s %d\n", m.Kind, m.Name, m.Count)
		}
	}
	for _, s := range decode.Report() {
		fmt.Printf("  span      %-28s calls=%d timed=%d nanos=%d\n", s.Stage, s.Calls, s.Timed, s.Nanos)
	}
}

func buildSim(kind, benchmark string, sizeMB, ways, wocWays int, mt, reverter bool, reg *ldis.Observer) (*ldis.Sim, error) {
	var org ldis.Option
	switch kind {
	case "baseline":
		org = ldis.WithTraditional(1<<20, 8)
	case "trad":
		org = ldis.WithTraditional(sizeMB<<20, ways)
	case "distill", "fac":
		cfg := ldis.DefaultDistillConfig()
		cfg.WOCWays = wocWays
		cfg.MedianThreshold = mt
		cfg.Reverter = reverter
		if kind == "fac" {
			org = ldis.WithFAC(cfg, benchmark)
		} else {
			org = ldis.WithDistill(cfg)
		}
	case "cmpr":
		org = ldis.WithCompression(benchmark)
	case "sfp":
		org = ldis.WithSFP(0)
	default:
		return nil, fmt.Errorf("unknown cache kind %q", kind)
	}
	opts := []ldis.Option{org}
	if reg != nil {
		opts = append(opts, ldis.WithObserver(reg))
	}
	return ldis.New(opts...)
}
