// Command distillsim runs one synthetic benchmark through one cache
// organization and prints the resulting statistics.
//
//	distillsim -benchmark mcf -cache distill -accesses 2000000
//	distillsim -benchmark swim -cache baseline
//	distillsim -benchmark health -cache distill -woc-ways 3 -no-reverter
//	distillsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ldis"
	"ldis/internal/mem"
	"ldis/internal/trace"
	"ldis/internal/workload"
)

func main() {
	benchmark := flag.String("benchmark", "mcf", "synthetic benchmark name")
	traceFile := flag.String("trace", "", "replay a binary trace file (from tracegen) instead of a synthetic benchmark")
	lenient := flag.Bool("lenient", false, "with -trace: replay the valid prefix of a corrupt trace instead of refusing it")
	cacheKind := flag.String("cache", "distill", "cache organization: baseline | distill | cmpr | fac | sfp | trad")
	accesses := flag.Int("accesses", 1_000_000, "number of memory accesses to simulate")
	sizeMB := flag.Int("size-mb", 1, "cache size in MB (trad only)")
	ways := flag.Int("ways", 8, "associativity (trad only)")
	wocWays := flag.Int("woc-ways", 2, "WOC ways (distill/fac)")
	noMT := flag.Bool("no-mt", false, "disable median-threshold filtering")
	noReverter := flag.Bool("no-reverter", false, "disable the reverter circuit")
	ipc := flag.Bool("ipc", false, "also run the execution-driven timing model")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(workload.Names(), "\n"))
		return
	}

	sim, err := buildSim(*cacheKind, *benchmark, *sizeMB, *ways, *wocWays, !*noMT, !*noReverter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distillsim:", err)
		os.Exit(1)
	}
	var res ldis.Result
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "distillsim:", err)
			os.Exit(1)
		}
		var accs []mem.Access
		if *lenient {
			var cerr *trace.CorruptError
			accs, cerr = trace.ReadLenient(f)
			if cerr != nil {
				fmt.Fprintf(os.Stderr, "distillsim: warning: %v; replaying %d-access valid prefix\n", cerr, len(accs))
			}
		} else {
			accs, err = trace.Read(f)
		}
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "distillsim:", err)
			os.Exit(1)
		}
		res = sim.RunStream(*traceFile, trace.NewSliceStream(accs), *accesses)
	} else {
		res, err = sim.RunWorkload(*benchmark, *accesses)
		if err != nil {
			fmt.Fprintln(os.Stderr, "distillsim:", err)
			os.Exit(1)
		}
	}
	fmt.Println(res)
	if ds := sim.DistillStats(); ds != nil {
		fmt.Printf("distilled=%d threshold-skips=%d woc-evictions=%d mode-switches=%d writebacks=%d\n",
			ds.Distilled, ds.ThresholdSkips, ds.WOCEvictions, ds.ModeSwitches, ds.Writebacks)
		fmt.Printf("words used at LOC eviction: %v\n", ds.WordsUsedAtEvict)
	}

	if *ipc {
		base, dist, err := ldis.MeasureIPC(*benchmark, *accesses)
		if err != nil {
			fmt.Fprintln(os.Stderr, "distillsim:", err)
			os.Exit(1)
		}
		fmt.Printf("IPC: baseline %.3f (MPKI %.2f)  distill %.3f (MPKI %.2f)  improvement %.1f%%\n",
			base.IPC, base.MPKI, dist.IPC, dist.MPKI, 100*(dist.IPC-base.IPC)/base.IPC)
	}
}

func buildSim(kind, benchmark string, sizeMB, ways, wocWays int, mt, reverter bool) (*ldis.Sim, error) {
	switch kind {
	case "baseline":
		return ldis.NewBaselineSim(), nil
	case "trad":
		return ldis.NewTraditionalSim(sizeMB<<20, ways)
	case "distill":
		cfg := ldis.DefaultDistillConfig()
		cfg.WOCWays = wocWays
		cfg.MedianThreshold = mt
		cfg.Reverter = reverter
		return ldis.NewDistillSim(cfg), nil
	case "fac":
		cfg := ldis.DefaultDistillConfig()
		cfg.WOCWays = wocWays
		cfg.MedianThreshold = mt
		cfg.Reverter = reverter
		return ldis.NewFACSim(cfg, benchmark)
	case "cmpr":
		return ldis.NewCompressedSim(benchmark)
	case "sfp":
		return ldis.NewSFPSim(0)
	default:
		return nil, fmt.Errorf("unknown cache kind %q", kind)
	}
}
