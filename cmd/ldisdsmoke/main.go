// Command ldisdsmoke is the end-to-end smoke driver for ldisd, run by
// `make ldisd-smoke` and the ldisd-smoke CI job. It exercises the full
// service lifecycle against a real ldisd process:
//
//  1. start ldisd on an ephemeral port with a temp data directory,
//  2. wait for readiness via -addr-file and /v1/healthz,
//  3. submit an experiment job and long-poll its streamed result,
//  4. verify the result trailer reports a clean terminal state,
//  5. verify the per-job manifest round-trips with tool "ldisd",
//  6. SIGTERM the server and require a clean graceful-drain exit.
//
// Any deviation — missing trailer, failed job, unclean exit — is a
// non-zero exit, which fails the make target.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	bin := flag.String("bin", "bin/ldisd", "path to the ldisd binary under test")
	flag.Parse()
	if err := run(*bin); err != nil {
		fmt.Fprintln(os.Stderr, "ldisd-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("ldisd-smoke: OK")
}

func run(bin string) error {
	work, err := os.MkdirTemp("", "ldisd-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	addrFile := filepath.Join(work, "addr")

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-data", filepath.Join(work, "data"),
		"-drain-timeout", "60s",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", bin, err)
	}
	// The server is reaped below via SIGTERM + Wait; this is the
	// belt-and-braces cleanup for early failure returns.
	defer cmd.Process.Kill()

	addr, err := waitForFile(addrFile, 30*time.Second)
	if err != nil {
		return err
	}
	base := "http://" + strings.TrimSpace(addr)

	if err := checkHealth(base); err != nil {
		return err
	}
	if err := checkV1Surface(base); err != nil {
		return err
	}
	jobID, err := submitJob(base)
	if err != nil {
		return err
	}
	if err := streamResult(base, jobID); err != nil {
		return err
	}
	if err := checkManifest(base, jobID); err != nil {
		return err
	}

	// Graceful drain: one SIGTERM must exit 0 with no jobs in flight.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signalling server: %w", err)
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("server exited uncleanly after SIGTERM: %w", err)
	}
	return nil
}

// waitForFile polls for the -addr-file the server writes once bound.
func waitForFile(path string, timeout time.Duration) (string, error) {
	deadline := time.After(timeout)
	for {
		if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
			return string(data), nil
		}
		select {
		case <-deadline:
			return "", fmt.Errorf("server did not write %s within %v", path, timeout)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// checkHealth requires an "ok" health report.
func checkHealth(base string) error {
	var h struct {
		Status string `json:"status"`
	}
	if err := getJSON(base+"/v1/healthz", &h); err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("health status %q, want ok", h.Status)
	}
	return nil
}

// checkV1Surface requires the machine-readable route table and the
// versioning policy: unversioned spellings redirect (GET) or are gone
// (mutations), and content is served only under /v1/.
func checkV1Surface(base string) error {
	var spec struct {
		OpenAPI string         `json:"openapi"`
		Paths   map[string]any `json:"paths"`
	}
	if err := getJSON(base+"/v1/openapi.json", &spec); err != nil {
		return err
	}
	if spec.OpenAPI == "" || len(spec.Paths) == 0 {
		return fmt.Errorf("openapi document empty: %+v", spec)
	}
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noRedirect.Get(base + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMovedPermanently || resp.Header.Get("Location") != "/v1/healthz" {
		return fmt.Errorf("GET /healthz: status %d location %q, want 301 to /v1/healthz",
			resp.StatusCode, resp.Header.Get("Location"))
	}
	resp, err = http.Post(base+"/jobs", "application/json", strings.NewReader("{}"))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		return fmt.Errorf("POST /jobs: status %d, want 410", resp.StatusCode)
	}
	return nil
}

// submitJob posts a small experiment job and returns its id.
func submitJob(base string) (string, error) {
	spec := `{"kind":"exp","experiments":["fig6"],"benchmarks":["mcf","health"],"accesses":60000}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return "", fmt.Errorf("submit response: %w (body %s)", err, body)
	}
	if st.ID == "" {
		return "", fmt.Errorf("submit response missing job id: %s", body)
	}
	fmt.Fprintf(os.Stderr, "ldisd-smoke: submitted job %s\n", st.ID)
	return st.ID, nil
}

// streamResult long-polls the result endpoint and verifies the
// no-partial-response contract: the body ends with the status line and
// the X-Ldisd-Status trailer says "done" with an empty error trailer.
func streamResult(base, jobID string) error {
	resp, err := http.Get(base + "/v1/jobs/" + jobID + "/result?wait=1")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("reading result stream: %w", err)
	}
	// Trailers are populated only after the body is fully read.
	if got := resp.Trailer.Get("X-Ldisd-Status"); got != "done" {
		return fmt.Errorf("result trailer X-Ldisd-Status = %q (error %q), want done; body:\n%s",
			got, resp.Trailer.Get("X-Ldisd-Error"), body)
	}
	if got := resp.Trailer.Get("X-Ldisd-Error"); got != "" {
		return fmt.Errorf("result trailer X-Ldisd-Error = %q, want empty", got)
	}
	if !bytes.Contains(body, []byte("# ldisd: job "+jobID+" done")) {
		return fmt.Errorf("result stream missing terminal status line; body:\n%s", body)
	}
	if !bytes.Contains(body, []byte("mcf")) {
		return fmt.Errorf("result stream missing benchmark rows; body:\n%s", body)
	}
	fmt.Fprintf(os.Stderr, "ldisd-smoke: result streamed (%d bytes, trailer done)\n", len(body))
	return nil
}

// checkManifest fetches the per-job manifest and pins its identity.
func checkManifest(base, jobID string) error {
	var m struct {
		Tool        string            `json:"tool"`
		Experiments []string          `json:"experiments"`
		Params      map[string]string `json:"params"`
	}
	if err := getJSON(base+"/v1/jobs/"+jobID+"/manifest", &m); err != nil {
		return err
	}
	if m.Tool != "ldisd" {
		return fmt.Errorf("manifest tool %q, want ldisd", m.Tool)
	}
	if len(m.Experiments) != 1 || m.Experiments[0] != "fig6" {
		return fmt.Errorf("manifest experiments %v, want [fig6]", m.Experiments)
	}
	if m.Params["job_id"] != jobID {
		return fmt.Errorf("manifest job_id %q, want %s", m.Params["job_id"], jobID)
	}
	fmt.Fprintln(os.Stderr, "ldisd-smoke: manifest verified")
	return nil
}

// getJSON fetches url and decodes a 200 JSON body into v.
func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d, body %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}
