# ldis — build, verification, and benchmark targets.
#
# `make check` is the tier-1 gate: build, vet, tests.
# `make race` runs the test suite under the race detector (the
# experiment engine fans (benchmark × configuration) cells out across
# worker goroutines, so the suite doubles as a scheduler race test).
# `make bench-smoke` regenerates BENCH_throughput.json with a short run.

GO ?= go

.PHONY: all build vet test check race bench bench-smoke profile clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: build vet test

race:
	$(GO) test -race ./...

# Full benchmark suite (per-figure, hot-path, and scheduler fan-out).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Short throughput run: regenerates the committed BENCH_throughput.json.
# Sized to finish in well under a minute on one core.
bench-smoke:
	$(GO) run ./cmd/ldisexp -accesses 200000 -throughput BENCH_throughput.json \
		fig6 fig7 fig8 table5 > /dev/null
	@tail -n +2 BENCH_throughput.json | head -n 12

# CPU + heap profiles of the headline experiment, written to ./profiles.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/ldisexp -accesses 400000 \
		-cpuprofile profiles/cpu.prof -memprofile profiles/mem.prof \
		fig6 > /dev/null
	@echo "inspect with: go tool pprof profiles/cpu.prof"

clean:
	rm -rf profiles
