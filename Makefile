# ldis — build, verification, and benchmark targets.
#
# `make check` is the tier-1 gate: build, vet, lint, tests.
# `make lint` runs the project's own analyzer suite (cmd/ldislint):
# noalloc, detrange, nowallclock, gridpure, sharddisjoint,
# atomicplain, boundedgo — the determinism, zero-allocation, and
# concurrency-safety invariants enforced at compile time.
# `make lint-vet` runs the same suite through `go vet -vettool`, which
# also analyzes _test.go files.
# `make lint-json` writes lint-report.json (every diagnostic as one
# JSON object per line, suppressed ones included); CI uploads it as
# the lint-report artifact.
# `make lint-fix-check` runs the stale-suppression sweep: any
# justified //ldis:*-ok directive no analyzer needs anymore, or any
# unknown //ldis: name, fails the target.
# `make race` runs the test suite under the race detector (the
# experiment engine fans (benchmark × configuration) cells out across
# worker goroutines, so the suite doubles as a scheduler race test).
# `make test-race` is the focused race gate CI runs as its own job:
# the shard/batch equivalence matrix (internal/hierarchy), the
# bounded-parallelism pools (internal/par), and the concurrent
# observability registry (internal/obs).
# `make bench-smoke` regenerates BENCH_throughput.json with a short run.
# `make bench` writes a fresh throughput snapshot to benchmarks/latest;
# `make bench-gate` fails if it regressed >$(BENCH_TOL) against the
# committed benchmarks/baseline; `make bench-promote` blesses the
# latest snapshot as the new baseline (commit the result). Workflow:
#   make bench          # measure (single worker, repeats, median)
#   make bench-gate     # compare against benchmarks/baseline
#   make bench-promote  # intentional perf change: update the baseline
# `make microbench` runs the Go testing benchmarks (per-figure,
# hot-path, and scheduler fan-out).
# `make fuzz-smoke` runs the trace-codec and checkpoint-scan fuzzers
# briefly over their committed seed corpora.
# `make mrc-smoke` validates the miss-ratio-curve engine: SHARDS-vs-
# exact tolerance on every benchmark, curve-vs-simulation spot checks,
# and a short end-to-end ldisexp mrc run.
# `make obs-smoke` validates the observability core: manifest
# determinism across worker counts, the zero-allocation registry
# tests, and an end-to-end ldisexp run whose manifest must round-trip
# the validating parser and carry the instrumented metrics.
# `make chaos` runs the fault-injection suite: seeded panics, corrupt
# traces, and kill-mid-sweep checkpoints driven through the full
# engine (see DESIGN.md §8).
# `make ldisd-smoke` drives the ldisd service end to end against a
# real process: start, submit, stream the result, verify the manifest,
# SIGTERM-drain (see DESIGN.md §12).
# `make examples` builds every example program (compile gate).
# `make orgs-smoke` validates the related-work organization trio
# (Touché tags, clean copy-back, way memoization): the three acceptance
# gates — Touché tag area below LDIS per-word at equal miss ratio,
# copy-back strictly reducing misses on the reuse-heavy benchmarks, and
# memo energy never above baseline with identical results — plus the
# focused unit tests and a short end-to-end ldisexp orgs run (see
# DESIGN.md §14).
# `make partition-smoke` validates the partition controller end to end:
# UCP must not lose to the static equal split on any bundled scenario,
# the online-SHARDS allocator must agree with exact Mattson within one
# way on >=90% of epochs, the word-grain policy must change at least
# one allocation, and a short ldisexp partition run must succeed (see
# DESIGN.md §13).

GO ?= go

.PHONY: all build vet lint lint-vet lint-json lint-fix-check \
	lint-install test check race test-race microbench bench \
	bench-gate bench-promote bench-smoke chaos fuzz-smoke mrc-smoke \
	obs-smoke ldisd-smoke partition-smoke orgs-smoke examples govulncheck profile \
	clean

# Allowed fractional slowdown per experiment before bench-gate fails.
BENCH_TOL ?= 0.05
# The pinned gate workload: the four headline experiments, single
# worker (so decode CPU time equals its wall share), three repeats
# with the median reported.
BENCH_FLAGS = -accesses 200000 -parallel 1 -bench-repeats 3 fig6 fig7 fig8 table5 partition orgs

all: check

build:
	$(GO) build ./...

# Compile gate for the example programs: examples are documentation
# that must keep building, but `go build ./...` does not reach them
# (each is its own main package under examples/).
examples:
	$(GO) build -o /dev/null ./examples/...

vet:
	$(GO) vet ./...

# Project analyzer suite, standalone driver. This is the authoritative
# lint gate: unlike vet mode it verifies //ldis:noalloc call chains
# across package boundaries (see DESIGN.md).
lint:
	$(GO) run ./cmd/ldislint ./...

# Vet driver mode: the suite through the go command's unitchecker
# protocol. Cross-package facts are unavailable here (the standalone
# driver is authoritative for those), but vet also analyzes _test.go
# files, which the standalone driver does not see.
lint-vet:
	@mkdir -p bin
	$(GO) build -o bin/ldislint ./cmd/ldislint
	$(GO) vet -vettool=bin/ldislint ./...

# JSON lint report: every diagnostic as one NDJSON record —
# {"analyzer","pos","message","suppressed"[,"suppressed_by"]} —
# including the suppressed ones text mode hides. Fails like lint.
lint-json:
	$(GO) run ./cmd/ldislint -json ./... > lint-report.json

# Stale-suppression sweep: every justified //ldis:*-ok directive must
# still silence a diagnostic, and every //ldis: name must be part of
# the grammar. A suppression nothing needs is a lie about the code's
# invariants — delete it.
lint-fix-check:
	$(GO) run ./cmd/ldislint -stale ./...

# Install ldislint into GOBIN so `go vet -vettool=$$(command -v
# ldislint) ./...` works from any checkout.
lint-install:
	$(GO) install ./cmd/ldislint

test:
	$(GO) test ./...

check: build vet lint test

race:
	$(GO) test -race ./...

# Focused race gate: the packages whose concurrency the sharddisjoint,
# atomicplain, and boundedgo analyzers reason about, under the dynamic
# detector. The shard/batch equivalence tests in internal/hierarchy
# drive every worker count the static proofs cover.
test-race:
	$(GO) test -race ./internal/hierarchy/... ./internal/par/... ./internal/obs/... \
		./internal/server/...

# Fault-injection (chaos) suite: the resilience tests across the
# scheduler, checkpoint, trace-decode, fault-injector, and service
# layers, run under the race detector so injected panics can't hide a
# data race. The internal/server leg covers the ldisd chaos gate:
# injected worker panics, corrupt uploads, queue-full shedding, and
# kill-mid-sweep resume.
chaos:
	$(GO) test -race -run 'Chaos|Checkpoint|Panic|Policy|Fault|Corrupt|Lenient|Sheds|KillMidSweep|Drain' \
		./internal/exp ./internal/par ./internal/trace ./internal/faultinject \
		./internal/server

# Short fuzz runs over the committed seed corpora: the trace codec
# (internal/trace/testdata/fuzz), the checkpoint record scanner
# (internal/exp/testdata/fuzz), and the ldisd job-spec decoder
# (internal/server/testdata/fuzz). Sized for CI.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzRead -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzCheckpointScan -fuzztime 10s ./internal/exp
	$(GO) test -run '^$$' -fuzz FuzzDecodeSpec -fuzztime 10s ./internal/server

# Miss-ratio-curve validation: the acceptance gate for internal/mrc.
# The tests assert the SHARDS curve within 0.02 absolute error of the
# exact Mattson curve on every registered benchmark and spot-check the
# exact curve against full cache simulation; the CLI run exercises the
# experiment end to end (curves for two benchmarks, both columns).
mrc-smoke:
	$(GO) test -run 'TestMRCShardsTolerance|TestMRCMatchesSimulation' -count=1 ./internal/exp
	$(GO) run ./cmd/ldisexp -accesses 120000 -benchmarks sixtrack,health mrc > /dev/null

# Observability smoke: the acceptance gate for internal/obs. The
# tests pin manifest determinism across worker counts and the
# zero-allocation metric hot paths; the CLI run exercises manifest
# emission end to end (-verify-manifest re-reads it through the
# validating parser) and the greps assert the required content:
# identity fields, instrumented distill counters, and span timings.
obs-smoke:
	$(GO) test -run 'TestManifestDeterministicAcrossWorkerCounts' -count=1 ./internal/exp
	$(GO) test -count=1 ./internal/obs
	$(GO) run ./cmd/ldisexp -accesses 60000 -benchmarks mcf,health \
		-out obs-smoke-out -verify-manifest fig6 > /dev/null
	@grep -q '"tool": "ldisexp"' obs-smoke-out/manifest.json
	@grep -q '"name": "distill_lines_distilled"' obs-smoke-out/manifest.json
	@grep -q '"stage": "simulate"' obs-smoke-out/manifest.json
	@rm -rf obs-smoke-out
	@echo "obs-smoke: manifest verified"

# Partition smoke: the acceptance gate for internal/partition (see
# DESIGN.md §13). The three gate tests pin the smoke properties on the
# bundled scenarios; the CLI run exercises the experiment end to end
# on one custom tenant mix.
partition-smoke:
	$(GO) test -run 'TestPartitionUCPBeatsStatic|TestPartitionShardsAgreesWithExact|TestPartitionLDISAwareDiffers' \
		-count=1 ./internal/exp
	$(GO) test -count=1 ./internal/partition
	$(GO) run ./cmd/ldisexp -accesses 60000 -partition tenants=twolf+mcf,epoch=6000 partition > /dev/null
	@echo "partition-smoke: gates passed"

# Organization-trio smoke: the acceptance gates for the orgs
# experiment (see DESIGN.md §14) — area, miss-reduction, and energy —
# plus the modifier unit tests (superblock aliasing, copy-back
# cold-start, memo transparency) and a short end-to-end CLI run
# exercising every grouped -orgs knob.
orgs-smoke:
	$(GO) test -run 'TestOrgsToucheTagAreaGate|TestOrgsCopyBackReducesMisses|TestOrgsWayMemoEnergyGate' \
		-count=1 ./internal/exp
	$(GO) test -run 'Touche|CopyBack|WayMemo|Memo|Modifier' -count=1 ./internal/wordstore ./internal/distill \
		./internal/cache ./internal/costmodel .
	$(GO) run ./cmd/ldisexp -accesses 60000 -benchmarks mcf,twolf \
		-orgs touche-sb-lines=8,waymemo-entries=8,copyback-max-reuse=1048576 orgs > /dev/null
	@echo "orgs-smoke: gates passed"

# End-to-end service smoke: builds the real ldisd binary and drives it
# through its full lifecycle with the Go smoke driver — start on an
# ephemeral port, submit a fig6 job, long-poll the streamed result and
# require the "done" trailer, verify the per-job manifest, then
# SIGTERM and require a clean graceful-drain exit.
ldisd-smoke:
	@mkdir -p bin
	$(GO) build -o bin/ldisd ./cmd/ldisd
	$(GO) run ./cmd/ldisdsmoke -bin bin/ldisd

# Advisory vulnerability scan: runs only if govulncheck is installed
# (it is not vendored; `go install golang.org/x/vuln/cmd/govulncheck@latest`
# needs network access). Never fails the build.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || true; \
	else \
		echo "govulncheck not installed; skipping (advisory only)"; \
	fi

# Go testing benchmarks (per-figure, hot-path, and scheduler fan-out).
microbench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Measure: write a fresh throughput snapshot to benchmarks/latest.
bench:
	mkdir -p benchmarks/latest
	$(GO) run ./cmd/ldisexp -throughput benchmarks/latest/BENCH_throughput.json \
		$(BENCH_FLAGS) > /dev/null

# Gate: regenerate the latest snapshot and fail on any experiment (or
# the total) more than BENCH_TOL slower than the committed baseline.
bench-gate: bench
	$(GO) run ./cmd/benchgate -tolerance $(BENCH_TOL)

# Promote: bless benchmarks/latest as the committed baseline. Run this
# only for intentional performance changes, then commit the result.
bench-promote:
	@test -f benchmarks/latest/BENCH_throughput.json || \
		{ echo "bench-promote: run 'make bench' first"; exit 1; }
	mkdir -p benchmarks/baseline
	cp benchmarks/latest/BENCH_throughput.json benchmarks/baseline/BENCH_throughput.json
	@echo "bench-promote: baseline updated; commit benchmarks/baseline"

# Short throughput run: regenerates the committed BENCH_throughput.json.
# Sized to finish in well under a minute on one core.
bench-smoke:
	$(GO) run ./cmd/ldisexp -accesses 200000 -throughput BENCH_throughput.json \
		fig6 fig7 fig8 table5 partition > /dev/null
	@tail -n +2 BENCH_throughput.json | head -n 12

# CPU + heap profiles of the headline experiment, written to ./profiles.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/ldisexp -accesses 400000 \
		-cpuprofile profiles/cpu.prof -memprofile profiles/mem.prof \
		fig6 > /dev/null
	@echo "inspect with: go tool pprof profiles/cpu.prof"

clean:
	rm -rf profiles benchmarks/latest bin lint-report.json
